/**
 * @file
 * Integration tests: switches, routing, and end-to-end fabric
 * latency/bandwidth.
 */

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "net/Fabric.hh"
#include "sim/Random.hh"
#include "sim/Simulation.hh"

namespace {

using namespace san;
using namespace san::sim;
using namespace san::net;

struct TwoHostFixture {
    Simulation s;
    Fabric fabric{s};
    Switch *sw;
    Adapter *a;
    Adapter *b;

    TwoHostFixture()
    {
        sw = &fabric.addSwitch(SwitchParams{8});
        a = &fabric.addAdapter("hostA");
        b = &fabric.addAdapter("hostB");
        fabric.connect(*sw, 0, *a);
        fabric.connect(*sw, 1, *b);
        fabric.computeRoutes();
    }
};

TEST(Fabric, SingleSwitchDeliversMessage)
{
    TwoHostFixture f;
    f.a->sendMessage(f.b->id(), 512);
    Message got{};
    bool received = false;
    f.s.spawn([](Adapter &rx, Message &out, bool &flag) -> Task {
        out = co_await rx.recvQueue().pop();
        flag = true;
    }(*f.b, got, received));
    f.s.run();
    ASSERT_TRUE(received);
    EXPECT_EQ(got.src, f.a->id());
    EXPECT_EQ(got.bytes, 512u);
}

TEST(Fabric, OneHopLatencyIncludesRoutingAndSerialization)
{
    TwoHostFixture f;
    f.a->sendMessage(f.b->id(), 512);
    Message got{};
    f.s.spawn([](Adapter &rx, Message &out) -> Task {
        out = co_await rx.recvQueue().pop();
    }(*f.b, got));
    f.s.run();
    // Virtual cut-through: header time (16 ns) + 100 ns routing +
    // one full serialization (528 ns) + two propagation delays.
    EXPECT_EQ(got.completedAt, ns(16 + 100 + 528 + 10));
}

TEST(Fabric, BidirectionalTrafficDoesNotInterfere)
{
    TwoHostFixture f;
    f.a->sendMessage(f.b->id(), 512);
    f.b->sendMessage(f.a->id(), 512);
    Message at_b{}, at_a{};
    f.s.spawn([](Adapter &rx, Message &out) -> Task {
        out = co_await rx.recvQueue().pop();
    }(*f.b, at_b));
    f.s.spawn([](Adapter &rx, Message &out) -> Task {
        out = co_await rx.recvQueue().pop();
    }(*f.a, at_a));
    f.s.run();
    // Full duplex: both complete at the same time.
    EXPECT_EQ(at_b.completedAt, at_a.completedAt);
}

TEST(Fabric, LargeMessageStreamsAtLinkBandwidth)
{
    TwoHostFixture f;
    const std::uint64_t bytes = 1 * MiB;
    f.a->sendMessage(f.b->id(), bytes);
    Message got{};
    f.s.spawn([](Adapter &rx, Message &out) -> Task {
        out = co_await rx.recvQueue().pop();
    }(*f.b, got));
    f.s.run();
    // 2048 packets x 528 wire bytes at 1 GB/s ~= 1.08 ms; pipelined
    // across the two hops.
    const double seconds = toSeconds(got.completedAt);
    const double ideal = 2048 * 528 / 1e9;
    EXPECT_GE(seconds, ideal);
    EXPECT_LE(seconds, ideal * 1.05);
}

TEST(Fabric, MultiSwitchPathRoutes)
{
    Simulation s;
    Fabric fabric(s);
    auto &s0 = fabric.addSwitch(SwitchParams{4});
    auto &s1 = fabric.addSwitch(SwitchParams{4});
    auto &s2 = fabric.addSwitch(SwitchParams{4});
    auto &src = fabric.addAdapter("src");
    auto &dst = fabric.addAdapter("dst");
    fabric.connect(s0, 0, src);
    fabric.connect(s2, 0, dst);
    fabric.connectSwitches(s0, 1, s1, 1);
    fabric.connectSwitches(s1, 2, s2, 2);
    fabric.computeRoutes();

    src.sendMessage(dst.id(), 256);
    Message got{};
    bool ok = false;
    s.spawn([](Adapter &rx, Message &out, bool &flag) -> Task {
        out = co_await rx.recvQueue().pop();
        flag = true;
    }(dst, got, ok));
    s.run();
    ASSERT_TRUE(ok);
    EXPECT_EQ(s0.packetsRouted(), 1u);
    EXPECT_EQ(s1.packetsRouted(), 1u);
    EXPECT_EQ(s2.packetsRouted(), 1u);
}

TEST(Fabric, RoutesToSwitchNodeReachDeliverLocal)
{
    Simulation s;
    Fabric fabric(s);
    auto &s0 = fabric.addSwitch(SwitchParams{4});
    auto &s1 = fabric.addSwitch(SwitchParams{4});
    auto &src = fabric.addAdapter("src");
    fabric.connect(s0, 0, src);
    fabric.connectSwitches(s0, 1, s1, 1);
    fabric.computeRoutes();

    // Address the remote switch itself (an active message would do
    // this); the base switch counts it as local.
    src.sendMessage(s1.id(), 64);
    s.run();
    EXPECT_EQ(s1.packetsLocal(), 1u);
    EXPECT_EQ(s0.packetsRouted(), 1u);
}

TEST(Fabric, ByteConservationAcrossFabric)
{
    // Property: total payload bytes received == sent across many
    // random messages between 4 hosts on one switch.
    Simulation s;
    Fabric fabric(s);
    auto &sw = fabric.addSwitch(SwitchParams{8});
    std::vector<Adapter *> hosts;
    for (int i = 0; i < 4; ++i) {
        auto &h = fabric.addAdapter("h" + std::to_string(i));
        fabric.connect(sw, static_cast<unsigned>(i), h);
        hosts.push_back(&h);
    }
    fabric.computeRoutes();

    std::uint64_t sent = 0;
    Random rng(7);
    for (int m = 0; m < 50; ++m) {
        const int from = static_cast<int>(rng.below(4));
        int to = static_cast<int>(rng.below(4));
        if (to == from)
            to = (to + 1) % 4;
        const std::uint64_t bytes = rng.between(1, 4096);
        sent += bytes;
        hosts[from]->sendMessage(hosts[to]->id(), bytes);
    }
    s.run();
    std::uint64_t received = 0;
    for (auto *h : hosts)
        received += h->bytesReceived();
    EXPECT_EQ(received, sent);
}

TEST(Switch, AttachPortRejectsOutOfRangeAndRewiring)
{
    Simulation s;
    Switch sw(s, "sw", 1, SwitchParams{4});
    Link out(s, "out", LinkParams{});
    Link in(s, "in", LinkParams{});
    // Beyond params().ports: no such port exists.
    EXPECT_THROW(sw.attachPort(4, out, in), std::out_of_range);
    sw.attachPort(0, out, in);
    // Silent re-wiring would leave the first links' sinks dangling.
    Link out2(s, "out2", LinkParams{});
    Link in2(s, "in2", LinkParams{});
    EXPECT_THROW(sw.attachPort(0, out2, in2), std::logic_error);
    // The original wiring survives the failed attempts.
    EXPECT_EQ(sw.outLink(0), &out);
    EXPECT_EQ(sw.inLink(0), &in);
}

TEST(Switch, SetRouteRejectsOutOfRangePort)
{
    Simulation s;
    Switch sw(s, "sw", 1, SwitchParams{4});
    EXPECT_THROW(sw.setRoute(99, 4), std::out_of_range);
    EXPECT_FALSE(sw.hasRoute(99));
    sw.setRoute(99, 3);
    EXPECT_EQ(sw.route(99), 3u);
}

TEST(Fabric, TreeTopologyAllPairsReachable)
{
    // Star of switches: one root, three leaves, two hosts per leaf.
    Simulation s;
    Fabric fabric(s);
    auto &root = fabric.addSwitch(SwitchParams{8});
    std::vector<Adapter *> hosts;
    for (int l = 0; l < 3; ++l) {
        auto &leaf = fabric.addSwitch(SwitchParams{8});
        fabric.connectSwitches(root, static_cast<unsigned>(l), leaf, 7);
        for (int h = 0; h < 2; ++h) {
            auto &host = fabric.addAdapter(
                "h" + std::to_string(l) + std::to_string(h));
            fabric.connect(leaf, static_cast<unsigned>(h), host);
            hosts.push_back(&host);
        }
    }
    fabric.computeRoutes();

    for (auto *from : hosts)
        for (auto *to : hosts)
            if (from != to)
                from->sendMessage(to->id(), 100);
    s.run();
    for (auto *h : hosts) {
        EXPECT_EQ(h->messagesReceived(), 5u) << h->name();
        EXPECT_EQ(h->bytesReceived(), 500u) << h->name();
    }
}

} // namespace
