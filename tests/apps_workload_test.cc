/**
 * @file
 * Tests of the deterministic workload generators the benchmarks rely
 * on (frame layout, match placement, record routing, reduction
 * vectors) — the "data" half of each application.
 */

#include <gtest/gtest.h>

#include "apps/DetHash.hh"
#include "apps/Grep.hh"
#include "apps/MpegFilter.hh"
#include "apps/ParallelSort.hh"
#include "apps/Reduction.hh"

namespace {

using namespace san::apps;

TEST(DetHash, DeterministicAndSpread)
{
    EXPECT_EQ(detHash(1, 2), detHash(1, 2));
    EXPECT_NE(detHash(1, 2), detHash(1, 3));
    EXPECT_NE(detHash(1, 2), detHash(2, 2));
    // Roughly uniform chance.
    int hits = 0;
    for (int i = 0; i < 10000; ++i)
        hits += detChance(42, static_cast<std::uint64_t>(i), 0.25);
    EXPECT_NEAR(hits / 10000.0, 0.25, 0.02);
}

TEST(MpegWorkload, PFrameShareMatchesPaper)
{
    MpegParams p;
    const std::uint64_t i_bytes = iBytesInRange(p, 0, p.fileBytes);
    const double p_share =
        1.0 - static_cast<double>(i_bytes) / p.fileBytes;
    // Paper: about 63.5% of the data are P frames.
    EXPECT_NEAR(p_share, 0.635, 0.01);
}

TEST(MpegWorkload, RangesTileExactly)
{
    MpegParams p;
    // Summing I bytes over disjoint chunks equals the whole-file
    // count, no matter the chunking.
    for (std::uint64_t chunk : {512ull, 4096ull, 65536ull}) {
        std::uint64_t total = 0;
        for (std::uint64_t off = 0; off < p.fileBytes; off += chunk)
            total += iBytesInRange(
                p, off, std::min(chunk, p.fileBytes - off));
        EXPECT_EQ(total, iBytesInRange(p, 0, p.fileBytes))
            << "chunk=" << chunk;
    }
}

TEST(MpegWorkload, FrameCountConsistent)
{
    MpegParams p;
    const std::uint64_t gop =
        p.iFrameBytes + p.pFramesPerGop * p.pFrameBytes;
    const std::uint64_t full_gops = p.fileBytes / gop;
    const std::uint64_t frames = framesInRange(p, 0, p.fileBytes);
    // Every complete GOP contributes 1 I + pFramesPerGop P frames.
    EXPECT_GE(frames, full_gops * (1 + p.pFramesPerGop));
    EXPECT_LE(frames, (full_gops + 1) * (1 + p.pFramesPerGop));
}

TEST(GrepWorkload, FileDividesIntoExactLines)
{
    GrepParams p;
    EXPECT_EQ(p.fileBytes % p.lineBytes, 0u);
}

TEST(SortWorkload, DestinationsBalancedAndDeterministic)
{
    SortParams p;
    std::vector<std::uint64_t> bins(p.nodes, 0);
    const std::uint64_t records = 40000;
    for (std::uint64_t r = 0; r < records; ++r) {
        const unsigned d = sortDestination(p, r);
        ASSERT_LT(d, p.nodes);
        ++bins[d];
        EXPECT_EQ(d, sortDestination(p, r));
    }
    for (unsigned n = 0; n < p.nodes; ++n)
        EXPECT_NEAR(static_cast<double>(bins[n]) / records,
                    1.0 / p.nodes, 0.02);
}

TEST(ReductionWorkload, ReferenceIsElementwiseSum)
{
    ReductionParams p;
    p.nodes = 4;
    auto ref = reduceReference(p);
    ASSERT_EQ(ref.size(), p.vectorBytes / p.elementBytes);
    // Spot-check a few elements against manual summation.
    for (unsigned e : {0u, 17u, 127u}) {
        std::int32_t sum = 0;
        for (unsigned n = 0; n < p.nodes; ++n)
            sum += nodeVector(p, n)[e];
        EXPECT_EQ(ref[e], sum);
    }
}

TEST(ReductionWorkload, NodeVectorsDiffer)
{
    ReductionParams p;
    EXPECT_NE(nodeVector(p, 0), nodeVector(p, 1));
    EXPECT_EQ(nodeVector(p, 3), nodeVector(p, 3));
}

} // namespace
