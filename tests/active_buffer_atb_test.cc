/**
 * @file
 * Unit tests for the active switch's data buffers and ATB.
 */

#include <gtest/gtest.h>

#include "active/Atb.hh"
#include "active/DataBuffer.hh"
#include "sim/Types.hh"

namespace {

using namespace san::active;
using namespace san::sim;

TEST(DataBufferPool, AllocateUntilExhausted)
{
    DataBufferPool pool;
    for (unsigned i = 0; i < 16; ++i)
        EXPECT_TRUE(pool.allocate().has_value());
    EXPECT_FALSE(pool.allocate().has_value());
    EXPECT_EQ(pool.freeCount(), 0u);
    EXPECT_EQ(pool.allocationFailures(), 1u);
    EXPECT_EQ(pool.peakInUse(), 16u);
}

TEST(DataBufferPool, ReleaseRecycles)
{
    DataBufferPool pool;
    auto a = pool.allocate();
    ASSERT_TRUE(a);
    pool.release(*a);
    EXPECT_EQ(pool.freeCount(), 16u);
    auto b = pool.allocate();
    ASSERT_TRUE(b);
    EXPECT_EQ(*b, *a); // LIFO free list recycles the same buffer
}

TEST(DataBufferPool, LineValidTimesFollowWireRate)
{
    DataBufferPool pool;
    auto id = pool.allocate();
    ASSERT_TRUE(id);
    // 512 bytes arriving at 1 byte/ns starting at t=1000ns.
    pool.fill(*id, ns(1000), 512, 1000.0);
    // First 32-byte line valid when its last byte is in: t+32ns.
    EXPECT_EQ(pool.validAt(*id, 0, 32), ns(1032));
    // Whole buffer valid at t+512ns.
    EXPECT_EQ(pool.validAt(*id, 0, 512), ns(1512));
    // A middle line.
    EXPECT_EQ(pool.validAt(*id, 256, 32), ns(1288));
    // A single byte in the first line needs only the first line.
    EXPECT_EQ(pool.validAt(*id, 5, 1), ns(1032));
}

TEST(DataBufferPool, LocalFillValidImmediately)
{
    DataBufferPool pool;
    auto id = pool.allocate();
    ASSERT_TRUE(id);
    pool.fillLocal(*id, 512, ns(77));
    EXPECT_EQ(pool.validAt(*id, 0, 512), ns(77));
}

TEST(DataBufferPool, ShortFillTracksPartialBuffer)
{
    DataBufferPool pool;
    auto id = pool.allocate();
    ASSERT_TRUE(id);
    pool.fill(*id, 0, 100, 1000.0);
    EXPECT_EQ(pool.validAt(*id, 0, 100), ns(100));
    EXPECT_EQ(pool.validAt(*id, 96, 4), ns(100)); // last partial line
}

TEST(Atb, MapTranslateRoundTrip)
{
    Atb atb;
    ASSERT_TRUE(atb.map(0x1000, 3));
    auto t = atb.translate(0x1000 + 77);
    ASSERT_TRUE(t);
    EXPECT_EQ(t->first, 3u);
    EXPECT_EQ(t->second, 77u);
    EXPECT_FALSE(atb.translate(0x2000).has_value());
}

TEST(Atb, DirectMappedConflictDetected)
{
    Atb atb(16, 512);
    // Addresses 16 buffers apart map to the same slot.
    ASSERT_TRUE(atb.map(0, 0));
    EXPECT_FALSE(atb.map(16 * 512, 1));
    EXPECT_EQ(atb.conflicts(), 1u);
    // Different slots coexist.
    EXPECT_TRUE(atb.map(512, 1));
    EXPECT_EQ(atb.liveMappings(), 2u);
}

TEST(Atb, StreamingAddressesNeverConflictWithin16Buffers)
{
    // Rising addresses wrap round-robin over the 16 slots: a window
    // of <= 16 outstanding chunks never conflicts.
    Atb atb(16, 512);
    for (unsigned i = 0; i < 64; ++i) {
        EXPECT_TRUE(atb.map(i * 512, i % 16));
        if (i >= 15) {
            // Keep the window at 16 by releasing the oldest.
            auto freed = atb.releaseBelow((i - 14) * 512);
            EXPECT_EQ(freed.size(), 1u);
        }
    }
}

TEST(Atb, ReleaseBelowFreesWholeObjects)
{
    Atb atb(16, 512);
    atb.map(0, 0);
    atb.map(512, 1);
    atb.map(1024, 2);
    // Deallocate_Buffer(1024): everything strictly below 1024.
    auto freed = atb.releaseBelow(1024);
    ASSERT_EQ(freed.size(), 2u);
    EXPECT_EQ(atb.liveMappings(), 1u);
    EXPECT_TRUE(atb.translate(1024).has_value());
    EXPECT_FALSE(atb.translate(0).has_value());
}

TEST(Atb, ReleaseBelowMidBufferKeepsThatBuffer)
{
    Atb atb(16, 512);
    atb.map(0, 0);
    // End address inside the buffer: the buffer is NOT freed (only
    // buffers with all valid addresses < end are released).
    auto freed = atb.releaseBelow(511);
    EXPECT_TRUE(freed.empty());
    EXPECT_TRUE(atb.translate(0).has_value());
}

TEST(Atb, ReleaseSingleMapping)
{
    Atb atb(16, 512);
    atb.map(2048, 5);
    EXPECT_TRUE(atb.release(2048));
    EXPECT_FALSE(atb.release(2048));
    EXPECT_FALSE(atb.translate(2048).has_value());
}

} // namespace
