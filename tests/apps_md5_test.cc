/**
 * @file
 * MD5 correctness: RFC 1321 test vectors and properties of the
 * K-chain interleaved variant used by the multi-CPU experiment.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "apps/Md5.hh"
#include "sim/Random.hh"

namespace {

using namespace san::apps;

std::vector<std::uint8_t>
bytes(const std::string &s)
{
    return {s.begin(), s.end()};
}

// RFC 1321 appendix A.5 test suite.
TEST(Md5, Rfc1321Vectors)
{
    EXPECT_EQ(toHex(md5(bytes(""))),
              "d41d8cd98f00b204e9800998ecf8427e");
    EXPECT_EQ(toHex(md5(bytes("a"))),
              "0cc175b9c0f1b6a831c399e269772661");
    EXPECT_EQ(toHex(md5(bytes("abc"))),
              "900150983cd24fb0d6963f7d28e17f72");
    EXPECT_EQ(toHex(md5(bytes("message digest"))),
              "f96b697d7cb7938d525a2f31aaf161d0");
    EXPECT_EQ(toHex(md5(bytes("abcdefghijklmnopqrstuvwxyz"))),
              "c3fcd3d76192e4007dfb496cca67e13b");
    EXPECT_EQ(toHex(md5(bytes("ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghij"
                              "klmnopqrstuvwxyz0123456789"))),
              "d174ab98d277d9f5a5611c2c9f419d9f");
    EXPECT_EQ(toHex(md5(bytes("1234567890123456789012345678901234567890"
                              "1234567890123456789012345678901234567890"))),
              "57edf4a22be3c955ac49da2e2107b67a");
}

TEST(Md5, IncrementalEqualsOneShot)
{
    const auto data = bytes("The quick brown fox jumps over the lazy dog");
    Md5 ctx;
    for (std::size_t i = 0; i < data.size(); i += 7)
        ctx.update(data.data() + i, std::min<std::size_t>(7, data.size() - i));
    EXPECT_EQ(toHex(ctx.finish()), toHex(md5(data)));
}

TEST(Md5, BlockCounterAdvances)
{
    Md5 ctx;
    std::vector<std::uint8_t> block(128, 0x5a);
    ctx.update(block.data(), block.size());
    EXPECT_EQ(ctx.blocksProcessed(), 2u);
}

TEST(Md5Interleaved, K1IsDigestOfDigest)
{
    // K = 1 degenerates to md5(md5(data)): one chain, recombined.
    const auto data = bytes("hello world, this is a chained test");
    const Md5Digest inner = md5(data);
    std::vector<std::uint8_t> combined(inner.begin(), inner.end());
    EXPECT_EQ(toHex(md5Interleaved(data, 1)), toHex(md5(combined)));
}

TEST(Md5Interleaved, DifferentKDifferentDigest)
{
    std::vector<std::uint8_t> data(4096);
    for (std::size_t i = 0; i < data.size(); ++i)
        data[i] = static_cast<std::uint8_t>(i * 131);
    const auto d1 = md5Interleaved(data, 1);
    const auto d2 = md5Interleaved(data, 2);
    const auto d4 = md5Interleaved(data, 4);
    EXPECT_NE(toHex(d1), toHex(d2));
    EXPECT_NE(toHex(d2), toHex(d4));
}

TEST(Md5Interleaved, MatchesManualChainRecombination)
{
    // Rebuild the K-chain digest by hand: chain i gets blocks
    // i, i+K, i+2K, ... of 64 bytes.
    std::vector<std::uint8_t> data(1000);
    for (std::size_t i = 0; i < data.size(); ++i)
        data[i] = static_cast<std::uint8_t>(i);
    const unsigned k = 3;
    std::vector<Md5> chains(k);
    std::size_t off = 0;
    unsigned block = 0;
    while (off < data.size()) {
        const std::size_t take = std::min<std::size_t>(64,
                                                       data.size() - off);
        chains[block % k].update(data.data() + off, take);
        off += take;
        ++block;
    }
    std::vector<std::uint8_t> combined;
    for (auto &c : chains) {
        auto d = c.finish();
        combined.insert(combined.end(), d.begin(), d.end());
    }
    EXPECT_EQ(toHex(md5Interleaved(data, k)), toHex(md5(combined)));
}

class Md5Property : public ::testing::TestWithParam<unsigned>
{};

TEST_P(Md5Property, DeterministicAcrossCalls)
{
    san::sim::Random rng(GetParam());
    std::vector<std::uint8_t> data(rng.between(1, 5000));
    for (auto &b : data)
        b = static_cast<std::uint8_t>(rng.next());
    EXPECT_EQ(toHex(md5(data)), toHex(md5(data)));
    for (unsigned k : {1u, 2u, 4u})
        EXPECT_EQ(toHex(md5Interleaved(data, k)),
                  toHex(md5Interleaved(data, k)));
}

INSTANTIATE_TEST_SUITE_P(Seeds, Md5Property,
                         ::testing::Values(1, 7, 13, 99));

} // namespace
