/**
 * @file
 * Tests for link serialization, credits, and adapter segmentation /
 * reassembly.
 */

#include <gtest/gtest.h>

#include <vector>

#include "net/Adapter.hh"
#include "net/Link.hh"
#include "net/Packet.hh"
#include "sim/Simulation.hh"

namespace {

using namespace san;
using namespace san::sim;
using namespace san::net;

Packet
makePkt(NodeId src, NodeId dst, std::uint32_t bytes)
{
    Packet p;
    p.src = src;
    p.dst = dst;
    p.payloadBytes = bytes;
    p.messageBytes = bytes;
    return p;
}

TEST(Link, SerializationTimeMatchesBandwidth)
{
    Simulation s;
    LinkParams lp;
    lp.bandwidthBytesPerSec = 1e9;
    lp.propagation = 0;
    Link link(s, "l", lp);
    std::vector<Arrival> got;
    link.setSink([&](const Arrival &a) { got.push_back(a); });
    link.send(makePkt(0, 1, 512));
    s.run();
    ASSERT_EQ(got.size(), 1u);
    // 512 B payload + 16 B header at 1 byte/ns.
    EXPECT_EQ(got[0].end, ns(528));
    EXPECT_EQ(got[0].start, 0u);
}

TEST(Link, BackToBackPacketsSerialize)
{
    Simulation s;
    LinkParams lp;
    lp.propagation = 0;
    Link link(s, "l", lp);
    std::vector<Tick> ends;
    link.setSink([&](const Arrival &a) {
        ends.push_back(a.end);
        link.returnCredit();
    });
    link.send(makePkt(0, 1, 512));
    link.send(makePkt(0, 1, 512));
    s.run();
    ASSERT_EQ(ends.size(), 2u);
    EXPECT_EQ(ends[0], ns(528));
    EXPECT_EQ(ends[1], ns(1056));
}

TEST(Link, CreditsGateTransmission)
{
    Simulation s;
    LinkParams lp;
    lp.credits = 2;
    lp.propagation = 0;
    Link link(s, "l", lp);
    int delivered = 0;
    link.setSink([&](const Arrival &) { ++delivered; });
    for (int i = 0; i < 5; ++i)
        link.send(makePkt(0, 1, 512));
    s.run();
    // Only two credits: two deliveries, three stuck in the queue.
    EXPECT_EQ(delivered, 2);
    EXPECT_EQ(link.queued(), 3u);
    EXPECT_EQ(link.credits(), 0u);
    // Returning credits releases the rest.
    link.returnCredit();
    link.returnCredit();
    link.returnCredit();
    s.run();
    EXPECT_EQ(delivered, 5);
    EXPECT_EQ(link.queued(), 0u);
}

TEST(Link, CreditConservationProperty)
{
    // Credits consumed + credits available == initial credits at any
    // quiescent point.
    Simulation s;
    LinkParams lp;
    lp.credits = 4;
    Link link(s, "l", lp);
    int outstanding = 0;
    link.setSink([&](const Arrival &) { ++outstanding; });
    for (int i = 0; i < 10; ++i)
        link.send(makePkt(0, 1, 64));
    s.run();
    EXPECT_EQ(link.credits() + outstanding, 4);
    while (outstanding > 0) {
        --outstanding;
        link.returnCredit();
    }
    s.run();
    EXPECT_EQ(link.packetsSent(), 8u); // 4 + 4 released
}

TEST(Adapter, SegmentsMessagesIntoMtuPackets)
{
    Simulation s;
    Adapter a(s, "hca", 0);
    Link out(s, "out", {});
    Link in(s, "in", {});
    std::vector<Arrival> wire;
    out.setSink([&](const Arrival &arr) {
        wire.push_back(arr);
        out.returnCredit();
    });
    a.attach(out, in);
    a.sendMessage(9, 1500);
    s.run();
    ASSERT_EQ(wire.size(), 3u);
    EXPECT_EQ(wire[0].pkt.payloadBytes, 512u);
    EXPECT_EQ(wire[1].pkt.payloadBytes, 512u);
    EXPECT_EQ(wire[2].pkt.payloadBytes, 476u);
    EXPECT_FALSE(wire[0].pkt.last);
    EXPECT_TRUE(wire[2].pkt.last);
    EXPECT_EQ(wire[0].pkt.messageId, wire[2].pkt.messageId);
    EXPECT_EQ(wire[0].pkt.messageBytes, 1500u);
    EXPECT_EQ(a.bytesSent(), 1500u);
}

TEST(Adapter, ZeroByteMessageStillTravels)
{
    Simulation s;
    Adapter a(s, "hca", 0);
    Link out(s, "out", {}), in(s, "in", {});
    int pkts = 0;
    out.setSink([&](const Arrival &) { ++pkts; });
    a.attach(out, in);
    a.sendMessage(3, 0);
    s.run();
    EXPECT_EQ(pkts, 1);
}

TEST(Adapter, ReassemblesBackToBackMessages)
{
    Simulation s;
    Adapter tx(s, "tx", 0), rx(s, "rx", 1);
    Link fwd(s, "fwd", {}), back(s, "back", {});
    tx.attach(fwd, back);
    rx.attach(back, fwd);

    tx.sendMessage(1, 1200);
    tx.sendMessage(1, 100);
    std::vector<Message> got;
    s.spawn([](Adapter &r, std::vector<Message> &out) -> Task {
        out.push_back(co_await r.recvQueue().pop());
        out.push_back(co_await r.recvQueue().pop());
    }(rx, got));
    s.run();
    ASSERT_EQ(got.size(), 2u);
    EXPECT_EQ(got[0].bytes, 1200u);
    EXPECT_EQ(got[1].bytes, 100u);
    EXPECT_EQ(got[0].src, 0u);
    EXPECT_LT(got[0].firstArrival, got[0].completedAt);
    EXPECT_EQ(rx.bytesReceived(), 1300u);
    EXPECT_EQ(rx.messagesReceived(), 2u);
}

TEST(Adapter, ActiveHeaderRidesEveryPacket)
{
    Simulation s;
    Adapter a(s, "hca", 0);
    Link out(s, "out", {}), in(s, "in", {});
    std::vector<Packet> pkts;
    out.setSink([&](const Arrival &arr) {
        pkts.push_back(arr.pkt);
        out.returnCredit();
    });
    a.attach(out, in);
    ActiveHeader hdr{5, 0xdeadbeef, 2};
    a.sendMessage(7, 1024, hdr);
    s.run();
    ASSERT_EQ(pkts.size(), 2u);
    for (const auto &p : pkts) {
        EXPECT_TRUE(p.active);
        EXPECT_EQ(p.activeHdr.handlerId, 5);
        EXPECT_EQ(p.activeHdr.address, 0xdeadbeefu);
        EXPECT_EQ(p.activeHdr.cpuId, 2);
    }
}

} // namespace
