/**
 * @file
 * Unit tests for the lb subsystem's pure state: the deterministic
 * 5-tuple pipeline (net::lfsrTuple -> apps::detTupleHash), the
 * flow-tag codec, the two-stage connection table and the Maglev
 * consistent-hash selector. Everything here is timing-free, so the
 * tests pin exact behaviour, not tolerances.
 */

#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <map>
#include <set>
#include <vector>

#include "apps/DetHash.hh"
#include "io/IoRequest.hh"
#include "lb/ConnTable.hh"
#include "lb/Maglev.hh"
#include "net/Traffic.hh"

namespace {

using namespace san;
using lb::ConnTable;
using lb::Maglev;

std::uint64_t
sigOf(std::uint64_t seed, std::uint64_t flowId)
{
    const net::FiveTuple t = net::lfsrTuple(seed, flowId);
    return apps::detTupleHash(0x1b5eedull, t.w0(), t.w1());
}

// ---- deterministic tuple + hash pipeline ----

TEST(LfsrTuple, PureFunctionOfSeedAndFlow)
{
    for (std::uint64_t f : {0ull, 1ull, 12345ull, (1ull << 29) + 7})
        for (std::uint64_t seed : {1ull, 42ull}) {
            const net::FiveTuple a = net::lfsrTuple(seed, f);
            const net::FiveTuple b = net::lfsrTuple(seed, f);
            EXPECT_EQ(a.w0(), b.w0());
            EXPECT_EQ(a.w1(), b.w1());
        }
}

TEST(LfsrTuple, DistinctFlowsGetDistinctTuples)
{
    std::set<std::pair<std::uint64_t, std::uint64_t>> seen;
    for (std::uint64_t f = 0; f < 100'000; ++f) {
        const net::FiveTuple t = net::lfsrTuple(1, f);
        EXPECT_TRUE(seen.emplace(t.w0(), t.w1()).second)
            << "tuple collision at flow " << f;
    }
}

TEST(LfsrTuple, ProtocolIsTcpOrUdp)
{
    for (std::uint64_t f = 0; f < 1'000; ++f) {
        const std::uint8_t p = net::lfsrTuple(1, f).proto;
        EXPECT_TRUE(p == 6 || p == 17);
    }
}

TEST(DetTupleHash, DeterministicAndSeedSensitive)
{
    const net::FiveTuple t = net::lfsrTuple(1, 99);
    EXPECT_EQ(apps::detTupleHash(7, t.w0(), t.w1()),
              apps::detTupleHash(7, t.w0(), t.w1()));
    EXPECT_NE(apps::detTupleHash(7, t.w0(), t.w1()),
              apps::detTupleHash(8, t.w0(), t.w1()));
}

TEST(DetTupleHash, AvalancheFlipsAboutHalfTheOutputBits)
{
    // Flip single input bits and require the output to change by
    // 16..48 of 64 bits on average-ish bounds per flip — the classic
    // avalanche sanity check for a routing hash.
    const std::uint64_t w0 = net::lfsrTuple(1, 4242).w0();
    const std::uint64_t w1 = net::lfsrTuple(1, 4242).w1();
    const std::uint64_t base = apps::detTupleHash(7, w0, w1);
    double totalFlipped = 0;
    int trials = 0;
    for (unsigned bit = 0; bit < 64; ++bit) {
        for (int word = 0; word < 2; ++word) {
            const std::uint64_t h = word == 0
                ? apps::detTupleHash(7, w0 ^ (1ull << bit), w1)
                : apps::detTupleHash(7, w0, w1 ^ (1ull << bit));
            const int flipped = std::popcount(base ^ h);
            EXPECT_GE(flipped, 8) << "weak avalanche at bit " << bit;
            EXPECT_LE(flipped, 56) << "weak avalanche at bit " << bit;
            totalFlipped += flipped;
            ++trials;
        }
    }
    const double mean = totalFlipped / trials;
    EXPECT_GT(mean, 28.0);
    EXPECT_LT(mean, 36.0);
}

TEST(DetTupleHash, SpreadsUniformlyAcrossBuckets)
{
    constexpr unsigned kBuckets = 64;
    std::vector<unsigned> count(kBuckets, 0);
    constexpr unsigned kFlows = 64'000;
    for (std::uint64_t f = 0; f < kFlows; ++f)
        ++count[sigOf(1, f) % kBuckets];
    for (unsigned b = 0; b < kBuckets; ++b) {
        EXPECT_GT(count[b], kFlows / kBuckets * 3 / 4);
        EXPECT_LT(count[b], kFlows / kBuckets * 5 / 4);
    }
}

// ---- flow-tag codec ----

TEST(FlowTag, RoundTripsAndAvoidsReservedIoTags)
{
    for (std::uint64_t f : {0ull, 1ull, 7ull, (1ull << 29) + 3}) {
        for (net::FlowOp op : {net::FlowOp::Syn, net::FlowOp::Data,
                               net::FlowOp::Fin}) {
            const std::uint32_t tag = net::flowTag(f, op);
            EXPECT_EQ(net::flowTagId(tag), f);
            EXPECT_EQ(net::flowTagOp(tag), op);
            // Host::demux consumes io::tagIoReply; a flow tag landing
            // there would vanish into the io completion path.
            EXPECT_NE(tag, io::tagIoRequest);
            EXPECT_NE(tag, io::tagIoReply);
        }
    }
}

// ---- hot index geometry ----

TEST(HotIndex, FitsTheSwitchDataCache)
{
    static_assert(sizeof(lb::HotIndex) <= 1024);
    static_assert(sizeof(lb::HotEntry) == 16);
    EXPECT_EQ(ConnTable::hotBytes(), 1024u);
    // The per-lookup hot-set read is one 64 B line of ways.
    EXPECT_EQ(sizeof(lb::HotEntry) * lb::HotIndex::kWays, 64u);
    // All 16 sets stay inside the modelled hot range.
    EXPECT_LT(ConnTable::hotSetAddr(~0ull) + 64,
              ConnTable::kHotBase + 1024 + 1);
}

// ---- connection table ----

TEST(ConnTable, InsertLookupRemoveLifecycle)
{
    ConnTable t(ConnTable::Params{1 << 10, 64});
    const std::uint64_t sig = sigOf(1, 1);

    EXPECT_FALSE(t.lookup(sig).hit);
    const auto ins = t.insert(sig, 3);
    EXPECT_TRUE(ins.ok);
    EXPECT_FALSE(ins.existed);
    EXPECT_EQ(t.live(), 1u);

    auto lr = t.lookup(sig);
    EXPECT_TRUE(lr.hit);
    EXPECT_TRUE(lr.hotHit); // insert installed it hot
    EXPECT_EQ(lr.backend, 3);

    const auto rm = t.remove(sig);
    EXPECT_TRUE(rm.removed);
    EXPECT_EQ(rm.backend, 3);
    EXPECT_EQ(t.live(), 0u);
    EXPECT_FALSE(t.lookup(sig).hit)
        << "hot index must not resurrect a removed flow";
}

TEST(ConnTable, SecondStageHitPromotesToHotIndex)
{
    ConnTable t(ConnTable::Params{1 << 12, 64});
    // Fill well past the hot index (64 entries) so old flows are
    // evicted from stage 1 but still live in stage 2.
    std::vector<std::uint64_t> sigs;
    for (std::uint64_t f = 0; f < 4'00; ++f) {
        sigs.push_back(sigOf(1, f));
        ASSERT_TRUE(t.insert(sigs.back(), f % 8).ok);
    }
    const auto first = t.lookup(sigs.front());
    ASSERT_TRUE(first.hit);
    EXPECT_FALSE(first.hotHit);
    EXPECT_TRUE(first.hotInstalled);
    EXPECT_GT(first.probes, 0u);
    const auto again = t.lookup(sigs.front());
    EXPECT_TRUE(again.hotHit) << "promotion must stick";
    EXPECT_EQ(again.backend, first.backend);
}

TEST(ConnTable, TombstonesAreReusedAndProbedThrough)
{
    ConnTable t(ConnTable::Params{1 << 10, 64});
    // Two signatures forced into the same bucket chain: sig2 probes
    // past sig1's slot. Removing sig1 leaves a tombstone that must
    // not break sig2's chain, and a later insert reuses the slot.
    const std::uint64_t mask = t.capacity() - 1;
    std::uint64_t sig1 = sigOf(1, 10);
    std::uint64_t sig2 = 0;
    for (std::uint64_t f = 11;; ++f) {
        const std::uint64_t s = sigOf(1, f);
        if ((s & mask) == (sig1 & mask) && s != sig1) {
            sig2 = s;
            break;
        }
    }
    ASSERT_TRUE(t.insert(sig1, 1).ok);
    ASSERT_TRUE(t.insert(sig2, 2).ok);
    ASSERT_TRUE(t.remove(sig1).removed);

    auto lr = t.lookup(sig2);
    EXPECT_TRUE(lr.hit) << "tombstone broke the probe chain";
    EXPECT_EQ(lr.backend, 2);

    const std::uint64_t liveBefore = t.live();
    const auto ins = t.insert(sig1, 5);
    EXPECT_TRUE(ins.ok);
    EXPECT_EQ(t.live(), liveBefore + 1);
    EXPECT_EQ(t.lookup(sig1).backend, 5);
}

TEST(ConnTable, ReopenRefreshesBackendInPlace)
{
    ConnTable t(ConnTable::Params{1 << 10, 64});
    const std::uint64_t sig = sigOf(1, 77);
    ASSERT_TRUE(t.insert(sig, 1).ok);
    const auto re = t.insert(sig, 6);
    EXPECT_TRUE(re.ok);
    EXPECT_TRUE(re.existed);
    EXPECT_EQ(t.live(), 1u);
    EXPECT_EQ(t.lookup(sig).backend, 6);
}

TEST(ConnTable, ProbeCapFailsInsertInsteadOfScanning)
{
    // Tiny table, tiny cap: fill it, then expect a clean failure.
    ConnTable t(ConnTable::Params{16, 4});
    unsigned ok = 0;
    bool sawFailure = false;
    for (std::uint64_t f = 0; f < 64; ++f) {
        const auto r = t.insert(sigOf(1, f), 0);
        if (r.ok)
            ++ok;
        else {
            sawFailure = true;
            EXPECT_LE(r.probes, 4u);
        }
    }
    EXPECT_TRUE(sawFailure);
    EXPECT_EQ(t.live(), ok);
}

TEST(ConnTable, ReassignMovesLiveFlow)
{
    ConnTable t(ConnTable::Params{1 << 10, 64});
    const std::uint64_t sig = sigOf(1, 5);
    ASSERT_TRUE(t.insert(sig, 0).ok);
    EXPECT_TRUE(t.reassign(sig, 7));
    EXPECT_EQ(t.lookup(sig).backend, 7);
    EXPECT_FALSE(t.reassign(sigOf(1, 999), 7));
}

TEST(ConnTable, ScalesToAMillionLiveFlows)
{
    ConnTable t(ConnTable::Params{});
    constexpr std::uint64_t kFlows = 1'000'000;
    for (std::uint64_t f = 0; f < kFlows; ++f)
        ASSERT_TRUE(t.insert(sigOf(1, f), f % 8).ok)
            << "insert failed at flow " << f;
    EXPECT_EQ(t.live(), kFlows);
    EXPECT_EQ(ConnTable::hotBytes(), 1024u)
        << "stage 1 must stay D$-resident regardless of scale";
    for (std::uint64_t f = 0; f < kFlows; f += 997) {
        const auto lr = t.lookup(sigOf(1, f));
        ASSERT_TRUE(lr.hit);
        EXPECT_EQ(lr.backend, f % 8);
    }
}

// ---- Maglev selector ----

TEST(Maglev, DeterministicAndFullyPopulated)
{
    Maglev a(8, 42), b(8, 42);
    std::vector<unsigned> share(8, 0);
    for (std::uint64_t s = 0; s < a.size(); ++s) {
        EXPECT_EQ(a.pick(s), b.pick(s));
        ASSERT_NE(a.pick(s), Maglev::kNone);
        ++share[a.pick(s)];
    }
    // Each backend owns roughly 1/8th of the prime-sized table.
    for (unsigned n : share) {
        EXPECT_GT(n, a.size() / 8 * 3 / 4);
        EXPECT_LT(n, a.size() / 8 * 5 / 4);
    }
}

TEST(Maglev, RemovalOnlyRemapsTheDeadBackendsSlots)
{
    Maglev m(8, 42);
    std::map<std::uint64_t, std::uint8_t> before;
    for (std::uint64_t s = 0; s < m.size(); ++s)
        before[s] = m.pick(s);

    ASSERT_TRUE(m.setAlive(3, false));
    unsigned moved = 0;
    for (std::uint64_t s = 0; s < m.size(); ++s) {
        const std::uint8_t now = m.pick(s);
        ASSERT_NE(now, Maglev::kNone);
        ASSERT_NE(now, 3);
        if (before[s] != 3)
            moved += now != before[s];
    }
    // The Maglev property: slots of surviving backends barely move
    // (the paper reports ~1% disruption; allow a loose 15%).
    EXPECT_LT(static_cast<double>(moved),
              0.15 * static_cast<double>(m.size()));

    // Rebirth restores the original table exactly.
    ASSERT_TRUE(m.setAlive(3, true));
    for (std::uint64_t s = 0; s < m.size(); ++s)
        EXPECT_EQ(m.pick(s), before[s]);
}

TEST(Maglev, EstablishedFlowsStickThroughChurn)
{
    // The end-to-end consistency invariant: flows in the ConnTable
    // never consult the Maglev again, so killing and reviving other
    // backends must not move them.
    ConnTable t(ConnTable::Params{1 << 12, 64});
    Maglev m(8, 42);
    std::map<std::uint64_t, std::uint8_t> assigned;
    for (std::uint64_t f = 0; f < 1'000; ++f) {
        const std::uint64_t sig = sigOf(1, f);
        const std::uint8_t b = m.pick(sig);
        ASSERT_TRUE(t.insert(sig, b).ok);
        assigned[sig] = b;
    }
    m.setAlive(5, false);
    m.setAlive(2, false);
    m.setAlive(5, true);
    for (const auto &[sig, b] : assigned) {
        const auto lr = t.lookup(sig);
        ASSERT_TRUE(lr.hit);
        EXPECT_EQ(lr.backend, b)
            << "table assignment moved under backend churn";
    }
}

TEST(Maglev, NoAliveBackendsYieldsNone)
{
    Maglev m(2, 7);
    m.setAlive(0, false);
    m.setAlive(1, false);
    EXPECT_EQ(m.aliveCount(), 0u);
    EXPECT_EQ(m.pick(123), Maglev::kNone);
    m.setAlive(0, true);
    EXPECT_NE(m.pick(123), Maglev::kNone);
}

} // namespace
