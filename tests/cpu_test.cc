/**
 * @file
 * Tests for the CPU timing/accounting models.
 */

#include <gtest/gtest.h>

#include "cpu/Cpu.hh"
#include "sim/Simulation.hh"

namespace {

using namespace san;
using namespace san::sim;
using namespace san::cpu;

TEST(Cpu, FrequenciesMatchPaper)
{
    Simulation s;
    HostCpu host(s, "host");
    SwitchCpu sw(s, "sp");
    EXPECT_EQ(host.frequency().hz(), 2'000'000'000u);
    EXPECT_EQ(sw.frequency().hz(), 500'000'000u);
    // Host runs at four times the switch speed.
    EXPECT_EQ(sw.frequency().period(), 4 * host.frequency().period());
}

TEST(Cpu, ComputeChargesBusyTime)
{
    Simulation s;
    HostCpu host(s, "host");
    s.spawn([](HostCpu &cpu) -> Task {
        co_await cpu.compute(2000); // 2000 cycles at 2 GHz = 1 us
    }(host));
    Tick end = s.run();
    EXPECT_EQ(end, us(1));
    EXPECT_EQ(host.busyTicks(), us(1));
    EXPECT_EQ(host.stallTicks(), 0u);
}

TEST(Cpu, TouchChargesStallTime)
{
    Simulation s;
    HostCpu host(s, "host");
    s.spawn([](HostCpu &cpu) -> Task {
        co_await cpu.touch(0x1000, 8, mem::AccessKind::Load);
    }(host));
    Tick end = s.run();
    EXPECT_GT(end, 0u);
    EXPECT_EQ(host.stallTicks(), end);
    EXPECT_EQ(host.busyTicks(), 0u);
}

TEST(Cpu, ExecCombinesBusyAndStall)
{
    Simulation s;
    HostCpu host(s, "host");
    s.spawn([](HostCpu &cpu) -> Task {
        co_await cpu.exec(100, 0x2000, 64, mem::AccessKind::Load);
    }(host));
    Tick end = s.run();
    EXPECT_EQ(host.busyTicks() + host.stallTicks(), end);
    EXPECT_EQ(host.busyTicks(), host.frequency().cycles(100));
    EXPECT_GT(host.stallTicks(), 0u);
}

TEST(Cpu, BreakdownComputesIdleAndUtilization)
{
    Simulation s;
    HostCpu host(s, "host");
    s.spawn([](HostCpu &cpu) -> Task {
        co_await cpu.compute(2000);   // 1 us busy
        co_await Delay{us(3)};        // 3 us idle (waiting on I/O)
    }(host));
    Tick end = s.run();
    EXPECT_EQ(end, us(4));
    auto bd = host.breakdown(end);
    EXPECT_EQ(bd.busy, us(1));
    EXPECT_EQ(bd.idle(), us(3));
    EXPECT_DOUBLE_EQ(bd.utilization(), 0.25);
}

TEST(Cpu, SwitchCpuMissesAreExpensiveRelativeToClock)
{
    Simulation s;
    SwitchCpu sw(s, "sp");
    s.spawn([](SwitchCpu &cpu) -> Task {
        co_await cpu.touch(0x100, 1, mem::AccessKind::Load);
    }(sw));
    s.run();
    // A cold D$ miss goes straight to RDRAM: >= 122 ns page miss,
    // i.e. dozens of 2 ns switch cycles.
    EXPECT_GE(sw.stallTicks(), ns(122));
}

TEST(Cpu, BusyForChargesFixedOsCosts)
{
    Simulation s;
    HostCpu host(s, "host");
    s.spawn([](HostCpu &cpu) -> Task {
        co_await cpu.busyFor(us(30)); // paper's per-request OS cost
    }(host));
    Tick end = s.run();
    EXPECT_EQ(end, us(30));
    EXPECT_EQ(host.busyTicks(), us(30));
}

TEST(Cpu, ResetAccountingClears)
{
    Simulation s;
    HostCpu host(s, "host");
    s.spawn([](HostCpu &cpu) -> Task {
        co_await cpu.compute(100);
    }(host));
    s.run();
    EXPECT_GT(host.busyTicks(), 0u);
    host.resetAccounting();
    EXPECT_EQ(host.busyTicks(), 0u);
    EXPECT_EQ(host.stallTicks(), 0u);
}

} // namespace
