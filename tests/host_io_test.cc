/**
 * @file
 * Host node edge cases: completion tracking, concurrent requests,
 * interleaved replies from multiple storage nodes, message ordering.
 */

#include <gtest/gtest.h>

#include <vector>

#include "host/Host.hh"
#include "io/StorageNode.hh"
#include "net/Fabric.hh"
#include "sim/Simulation.hh"

namespace {

using namespace san;
using namespace san::sim;

struct TwoDiskFixture {
    Simulation s;
    net::Fabric fabric{s};
    net::Switch *sw;
    host::Host *h;
    std::vector<io::StorageNode *> storage;

    TwoDiskFixture()
    {
        sw = &fabric.addSwitch(net::SwitchParams{8});
        h = new host::Host(s, "host0", fabric);
        fabric.connect(*sw, 0, h->hca());
        for (int i = 0; i < 2; ++i) {
            auto &tca =
                fabric.addAdapter("tca" + std::to_string(i));
            storage.push_back(new io::StorageNode(s, tca));
            fabric.connect(*sw, 1 + static_cast<unsigned>(i), tca);
        }
        fabric.computeRoutes();
        h->start();
        for (auto *st : storage)
            st->start();
    }

    ~TwoDiskFixture()
    {
        for (auto *st : storage)
            delete st;
        delete h;
    }
};

TEST(HostIo, ConcurrentRequestsToTwoStorageNodesComplete)
{
    TwoDiskFixture f;
    std::vector<host::IoCompletion> done;
    f.s.spawn([](host::Host &h, net::NodeId s0, net::NodeId s1,
                 std::vector<host::IoCompletion> &out) -> Task {
        auto a = co_await h.postRead(s0, 0, 128 * 1024);
        auto b = co_await h.postRead(s1, 0, 128 * 1024);
        out.push_back(co_await h.awaitIo(a));
        out.push_back(co_await h.awaitIo(b));
    }(*f.h, f.storage[0]->id(), f.storage[1]->id(), done));
    const Tick end = f.s.run();
    ASSERT_EQ(done.size(), 2u);
    EXPECT_EQ(done[0].bytes, 128u * 1024);
    EXPECT_EQ(done[1].bytes, 128u * 1024);
    // Two independent 100 MB/s arrays run in parallel: the pair
    // completes in roughly the time of one (plus ~the shared-link
    // serialization), far under 2x.
    EXPECT_LT(toSeconds(end), 2 * (128.0 * 1024 / 100e6));
}

TEST(HostIo, AwaitIoAfterCompletionReturnsImmediately)
{
    TwoDiskFixture f;
    Tick awaited_at = 0, completed_at = 0;
    f.s.spawn([](host::Host &h, net::NodeId st, Tick &aw, Tick &cp)
                  -> Task {
        auto id = co_await h.postRead(st, 0, 4096);
        co_await Delay{ms(50)}; // data long arrived
        const Tick before = h.cpu().now();
        auto done = co_await h.awaitIo(id);
        aw = h.cpu().now() - before;
        cp = done.completedAt;
    }(*f.h, f.storage[0]->id(), awaited_at, completed_at));
    f.s.run();
    EXPECT_EQ(awaited_at, 0u); // no extra wait
    EXPECT_GT(completed_at, 0u);
    EXPECT_LT(completed_at, ms(50));
}

TEST(HostIo, CompletionTimesOrderedWithinOneArray)
{
    TwoDiskFixture f;
    std::vector<Tick> completions;
    f.s.spawn([](host::Host &h, net::NodeId st,
                 std::vector<Tick> &out) -> Task {
        std::vector<std::uint64_t> ids;
        for (int i = 0; i < 4; ++i)
            ids.push_back(
                co_await h.postRead(st, i * 65536ull, 65536));
        for (auto id : ids)
            out.push_back((co_await h.awaitIo(id)).completedAt);
    }(*f.h, f.storage[0]->id(), completions));
    f.s.run();
    ASSERT_EQ(completions.size(), 4u);
    for (std::size_t i = 1; i < completions.size(); ++i)
        EXPECT_LT(completions[i - 1], completions[i]);
}

TEST(HostIo, AppMessagesNotSwallowedByIoTraffic)
{
    // While a read streams in, an app message must still reach the
    // app queue (the demux sorts by tag).
    TwoDiskFixture f;
    host::Host peer(f.s, "peer", f.fabric);
    f.fabric.connect(*f.sw, 3, peer.hca());
    f.fabric.computeRoutes();
    peer.start();

    bool got_app = false;
    f.s.spawn([](host::Host &h, net::NodeId st, bool &flag) -> Task {
        auto id = co_await h.postRead(st, 0, 256 * 1024);
        net::Message m = co_await h.recv(); // app message, mid-stream
        flag = (m.tag == host::tagApp && m.bytes == 99);
        co_await h.awaitIo(id);
    }(*f.h, f.storage[0]->id(), got_app));
    f.s.spawn([](host::Host &p, net::NodeId dst) -> Task {
        co_await Delay{us(300)}; // while the read is streaming
        co_await p.send(dst, 99);
    }(peer, f.h->id()));
    f.s.run();
    EXPECT_TRUE(got_app);
}

TEST(HostIo, ReadBlockingChargesOsCostOnceForWholeRequest)
{
    TwoDiskFixture f;
    f.s.spawn([](host::Host &h, net::NodeId st) -> Task {
        co_await h.readBlocking(st, 0, 128 * 1024);
    }(*f.h, f.storage[0]->id()));
    f.s.run();
    // 30 us + 128 * 0.27 us — a single request, regardless of the
    // 256 chunks it took on the wire.
    EXPECT_EQ(f.h->cpu().busyTicks(), us(30) + 128 * ns(270));
}

} // namespace
