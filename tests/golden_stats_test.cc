/**
 * @file
 * Golden-stats regression suite: run a small cluster in each of the
 * paper's four configurations, dump the machine-readable stats, and
 * compare byte-for-byte against checked-in golden files.
 *
 * Any change to simulated timing, cache behaviour, traffic or the
 * stats schema shows up here. If the change is intended, regenerate
 * the golden files with
 *
 *     SAN_UPDATE_GOLDEN=1 ctest -R GoldenStats
 *
 * and commit the diff alongside the change that caused it.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "apps/Cluster.hh"
#include "apps/MpegFilter.hh"
#include "harness/StatsReport.hh"
#include "obs/Json.hh"

#ifndef SAN_GOLDEN_DIR
#error "SAN_GOLDEN_DIR must point at tests/golden"
#endif

namespace {

using namespace san;

/** The golden workload: a small MPEG filter run (fast, exercises
 * hosts, switch CPUs, buffers, ATBs, storage and adapters). */
std::string
statsJsonFor(apps::Mode mode)
{
    std::string captured;
    apps::clusterObserver() = [&captured](apps::Cluster &cluster,
                                          apps::Mode) {
        std::ostringstream oss;
        obs::JsonWriter json(oss);
        harness::dumpClusterStatsJson(json, cluster);
        captured = oss.str();
    };
    apps::MpegParams params;
    params.fileBytes = 256 * 1024;
    runMpegFilter(mode, params);
    apps::clusterObserver() = apps::ClusterObserver{};
    return captured;
}

std::string
goldenPathFor(apps::Mode mode)
{
    std::string name = apps::modeName(mode);
    for (char &c : name)
        if (c == '+')
            c = '_';
    return std::string(SAN_GOLDEN_DIR) + "/mpeg_" + name + ".json";
}

class GoldenStats : public ::testing::TestWithParam<apps::Mode>
{};

TEST_P(GoldenStats, MatchesGoldenFile)
{
    const apps::Mode mode = GetParam();
    const std::string actual = statsJsonFor(mode);
    ASSERT_FALSE(actual.empty());
    const std::string path = goldenPathFor(mode);

    if (std::getenv("SAN_UPDATE_GOLDEN") != nullptr) {
        std::ofstream out(path);
        ASSERT_TRUE(out) << "cannot write " << path;
        out << actual;
        GTEST_SKIP() << "golden file regenerated: " << path;
    }

    std::ifstream in(path);
    ASSERT_TRUE(in) << "missing golden file " << path
                    << "; generate it with SAN_UPDATE_GOLDEN=1";
    std::ostringstream golden;
    golden << in.rdbuf();
    EXPECT_EQ(actual, golden.str())
        << "stats diverged from " << path
        << "\nIf this change is intended, regenerate with "
           "SAN_UPDATE_GOLDEN=1 and commit the new golden files.";
}

INSTANTIATE_TEST_SUITE_P(
    Modes, GoldenStats,
    ::testing::Values(apps::Mode::Normal, apps::Mode::NormalPref,
                      apps::Mode::Active, apps::Mode::ActivePref),
    [](const ::testing::TestParamInfo<apps::Mode> &info) {
        std::string name = apps::modeName(info.param);
        for (char &c : name)
            if (c == '+')
                c = 'P';
        return name;
    });

} // namespace
