/**
 * @file
 * Golden-stats regression suite: run small clusters in the paper's
 * configurations, dump the machine-readable stats, and compare
 * byte-for-byte against checked-in golden files.
 *
 * Any change to simulated timing, cache behaviour, traffic or the
 * stats schema shows up here. If the change is intended, regenerate
 * the golden files with
 *
 *     SAN_UPDATE_GOLDEN=1 ctest -R GoldenStats
 *
 * and commit the diff alongside the change that caused it.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "apps/Cluster.hh"
#include "apps/Grep.hh"
#include "apps/MpegFilter.hh"
#include "harness/StatsReport.hh"
#include "obs/Json.hh"

#ifndef SAN_GOLDEN_DIR
#error "SAN_GOLDEN_DIR must point at tests/golden"
#endif

namespace {

using namespace san;

/** One golden case: a workload at reduced size, in one mode. */
struct GoldenCase {
    const char *workload;
    apps::Mode mode;
};

/** Small runs that still exercise hosts, switch CPUs, buffers, ATBs,
 * storage and adapters. */
void
runWorkload(const GoldenCase &c)
{
    if (std::string(c.workload) == "mpeg") {
        apps::MpegParams params;
        params.fileBytes = 256 * 1024;
        runMpegFilter(c.mode, params);
    } else {
        apps::GrepParams params;
        params.fileBytes = 70 * 2048; // 2048 lines instead of 16384
        runGrep(c.mode, params);
    }
}

std::string
statsJsonFor(const GoldenCase &c)
{
    std::string captured;
    apps::clusterObserver() = [&captured](apps::Cluster &cluster,
                                          apps::Mode) {
        std::ostringstream oss;
        obs::JsonWriter json(oss);
        harness::dumpClusterStatsJson(json, cluster);
        captured = oss.str();
    };
    runWorkload(c);
    apps::clusterObserver() = apps::ClusterObserver{};
    return captured;
}

std::string
goldenPathFor(const GoldenCase &c)
{
    std::string name = apps::modeName(c.mode);
    for (char &c2 : name)
        if (c2 == '+')
            c2 = '_';
    return std::string(SAN_GOLDEN_DIR) + "/" + c.workload + "_" + name +
           ".json";
}

class GoldenStats : public ::testing::TestWithParam<GoldenCase>
{};

/** The goldens pin the *default* policy's event stream; a forced
 * policy override (the CI policy matrix) legitimately changes every
 * default-configured switch's timing, so these comparisons are
 * meaningless under it. */
bool
policyForced()
{
    return std::getenv("SAN_FORCE_SWITCH_POLICY") != nullptr;
}

TEST_P(GoldenStats, MatchesGoldenFile)
{
    if (policyForced())
        GTEST_SKIP() << "SAN_FORCE_SWITCH_POLICY overrides the "
                        "default policy these goldens pin";
    const GoldenCase &c = GetParam();
    const std::string actual = statsJsonFor(c);
    ASSERT_FALSE(actual.empty());
    const std::string path = goldenPathFor(c);

    if (std::getenv("SAN_UPDATE_GOLDEN") != nullptr) {
        std::ofstream out(path);
        ASSERT_TRUE(out) << "cannot write " << path;
        out << actual;
        GTEST_SKIP() << "golden file regenerated: " << path;
    }

    std::ifstream in(path);
    ASSERT_TRUE(in) << "missing golden file " << path
                    << "; generate it with SAN_UPDATE_GOLDEN=1";
    std::ostringstream golden;
    golden << in.rdbuf();
    EXPECT_EQ(actual, golden.str())
        << "stats diverged from " << path
        << "\nIf this change is intended, regenerate with "
           "SAN_UPDATE_GOLDEN=1 and commit the new golden files.";
}

TEST(GoldenFingerprint, FreshRunReproducesCommittedFingerprint)
{
    // The golden files embed each run's 64-bit fingerprint — a fold
    // over every executed (tick, event) plus the end-of-run stats.
    // Comparing a fresh RunStats fingerprint against the committed
    // value directly (not via the full JSON diff) pins the event
    // kernel's execution order to what was recorded before the
    // explicit-heap/slot-arena overhaul: any reordering, dropped or
    // duplicated event changes the fold.
    const GoldenCase c{"mpeg", apps::Mode::Active};
    if (std::getenv("SAN_UPDATE_GOLDEN") != nullptr)
        GTEST_SKIP() << "goldens being regenerated";
    if (policyForced())
        GTEST_SKIP() << "SAN_FORCE_SWITCH_POLICY changes the event "
                        "stream the fingerprint pins";
    std::ifstream in(goldenPathFor(c));
    ASSERT_TRUE(in) << "missing golden file " << goldenPathFor(c);
    std::uint64_t committed = 0;
    for (std::string line; std::getline(in, line);) {
        const auto pos = line.find("\"fingerprint\": ");
        if (pos == std::string::npos)
            continue;
        committed = std::strtoull(
            line.c_str() + pos + std::strlen("\"fingerprint\": "),
            nullptr, 10);
        break;
    }
    ASSERT_NE(committed, 0u) << "no fingerprint in the golden file";

    apps::MpegParams params;
    params.fileBytes = 256 * 1024;
    const apps::RunStats fresh = runMpegFilter(c.mode, params);
    EXPECT_EQ(fresh.fingerprint, committed)
        << "the event kernel no longer reproduces the committed "
           "event stream";
}

INSTANTIATE_TEST_SUITE_P(
    Workloads, GoldenStats,
    ::testing::Values(GoldenCase{"mpeg", apps::Mode::Normal},
                      GoldenCase{"mpeg", apps::Mode::NormalPref},
                      GoldenCase{"mpeg", apps::Mode::Active},
                      GoldenCase{"mpeg", apps::Mode::ActivePref},
                      GoldenCase{"grep", apps::Mode::Normal},
                      GoldenCase{"grep", apps::Mode::Active}),
    [](const ::testing::TestParamInfo<GoldenCase> &info) {
        std::string name = std::string(info.param.workload) + "_" +
                           apps::modeName(info.param.mode);
        for (char &c : name)
            if (c == '+')
                c = 'P';
        return name;
    });

} // namespace
