/**
 * @file
 * Topology-builder and fabric-traffic tests: fat-tree / dragonfly
 * shapes, all-pairs reachability at scale, and the deterministic
 * fabric-wide traffic patterns.
 */

#include <gtest/gtest.h>

#include <set>
#include <stdexcept>
#include <vector>

#include "net/Topology.hh"
#include "net/Traffic.hh"
#include "sim/Simulation.hh"

namespace {

using namespace san;
using namespace san::sim;
using namespace san::net;

TEST(Topology, FatTreeK4CountsAndAllPairsReachability)
{
    Simulation s;
    Fabric fabric(s);
    const Topology topo = buildFatTree(fabric, FatTreeParams{4});

    EXPECT_EQ(topo.hosts.size(), fatTreeHostCount(4));
    EXPECT_EQ(topo.hosts.size(), 16u);
    EXPECT_EQ(topo.switchCount(), fatTreeSwitchCount(4));
    EXPECT_EQ(topo.switchCount(), 20u);
    EXPECT_EQ(topo.edge.size(), 8u);
    EXPECT_EQ(topo.aggregation.size(), 8u);
    EXPECT_EQ(topo.core.size(), 4u);
    EXPECT_EQ(fabric.links().size(), fatTreeLinkCount(4));
    EXPECT_EQ(fabric.links().size(), 96u);
    EXPECT_EQ(topo.groups, 4u);
    ASSERT_EQ(topo.hostGroup.size(), topo.hosts.size());
    // 4 hosts per pod, in creation order.
    for (unsigned i = 0; i < topo.hosts.size(); ++i)
        EXPECT_EQ(topo.hostGroup[i], i / 4) << i;

    // Every edge switch routes to every host (15 remote + 1 local
    // per edge... all 16, plus the other 19 switches).
    for (const Switch *e : topo.edge)
        for (const Adapter *h : topo.hosts)
            EXPECT_TRUE(e->hasRoute(h->id()))
                << e->name() << " -> " << h->name();

    // All-pairs: every host sends one message to every other.
    for (auto *from : topo.hosts)
        for (auto *to : topo.hosts)
            if (from != to)
                from->sendMessage(to->id(), 100);
    s.run();
    for (auto *h : topo.hosts) {
        EXPECT_EQ(h->messagesReceived(), 15u) << h->name();
        EXPECT_EQ(h->bytesReceived(), 1500u) << h->name();
    }
}

TEST(Topology, FatTreeK8Counts)
{
    Simulation s;
    Fabric fabric(s);
    const Topology topo = buildFatTree(fabric, FatTreeParams{8});

    EXPECT_EQ(topo.hosts.size(), fatTreeHostCount(8));
    EXPECT_EQ(topo.hosts.size(), 128u);
    EXPECT_EQ(topo.switchCount(), fatTreeSwitchCount(8));
    EXPECT_EQ(topo.switchCount(), 80u);
    EXPECT_EQ(fabric.links().size(), fatTreeLinkCount(8));
    EXPECT_EQ(fabric.links().size(), 768u);

    // Uniform fabric traffic as a reachability smoke at 128 hosts:
    // every posted message lands.
    FabricTrafficParams p;
    p.pattern = FabricTrafficParams::Pattern::Uniform;
    p.messagesPerHost = 2;
    p.messageBytes = 256;
    FabricTrafficGen gen(s, topo.hosts, topo.hostGroup, p);
    gen.start();
    s.run();
    const FabricTrafficReport r = gen.report();
    EXPECT_EQ(r.postedMessages, 256u);
    EXPECT_EQ(r.deliveredMessages, 256u);
    EXPECT_EQ(r.deliveredBytes, 256u * 256u);
}

TEST(Topology, FatTreeRejectsBadArity)
{
    Simulation s;
    Fabric fabric(s);
    EXPECT_THROW(buildFatTree(fabric, FatTreeParams{3}),
                 std::invalid_argument);
    EXPECT_THROW(buildFatTree(fabric, FatTreeParams{0}),
                 std::invalid_argument);
    EXPECT_THROW(buildDragonfly(fabric, DragonflyParams{0, 2, 1}),
                 std::invalid_argument);
    EXPECT_THROW(buildDragonfly(fabric, DragonflyParams{2, 0, 1}),
                 std::invalid_argument);
    EXPECT_THROW(buildDragonfly(fabric, DragonflyParams{2, 2, 0}),
                 std::invalid_argument);
}

TEST(Topology, DragonflyCountsAndAllPairsReachability)
{
    // a=2, p=2, h=1: 3 groups of 2 routers, 12 hosts — the smallest
    // dragonfly with local and global channels both exercised.
    Simulation s;
    Fabric fabric(s);
    const DragonflyParams params{2, 2, 1};
    const Topology topo = buildDragonfly(fabric, params);

    EXPECT_EQ(dragonflyGroupCount(params), 3u);
    EXPECT_EQ(topo.groups, 3u);
    EXPECT_EQ(topo.hosts.size(), dragonflyHostCount(params));
    EXPECT_EQ(topo.hosts.size(), 12u);
    EXPECT_EQ(topo.edge.size(), dragonflySwitchCount(params));
    EXPECT_EQ(topo.edge.size(), 6u);
    EXPECT_TRUE(topo.aggregation.empty());
    EXPECT_TRUE(topo.core.empty());
    // Pairs: 12 host-router + 3 local + 3 global = 18 -> 36 links.
    EXPECT_EQ(fabric.links().size(), dragonflyLinkCount(params));
    EXPECT_EQ(fabric.links().size(), 36u);

    for (auto *from : topo.hosts)
        for (auto *to : topo.hosts)
            if (from != to)
                from->sendMessage(to->id(), 100);
    s.run();
    for (auto *h : topo.hosts) {
        EXPECT_EQ(h->messagesReceived(), 11u) << h->name();
        EXPECT_EQ(h->bytesReceived(), 1100u) << h->name();
    }
}

TEST(Topology, DragonflyBenchShapeHas144Hosts)
{
    // The bench configuration: a=4, p=4, h=2 -> 9 groups, 36
    // routers, 144 hosts (>= 128, the acceptance floor).
    const DragonflyParams params{4, 4, 2};
    EXPECT_EQ(dragonflyGroupCount(params), 9u);
    EXPECT_EQ(dragonflySwitchCount(params), 36u);
    EXPECT_EQ(dragonflyHostCount(params), 144u);
}

TEST(FabricTraffic, UniformConservesMessagesAndAvoidsSelf)
{
    Simulation s;
    Fabric fabric(s);
    const Topology topo = buildFatTree(fabric, FatTreeParams{4});

    FabricTrafficParams p;
    p.pattern = FabricTrafficParams::Pattern::Uniform;
    p.messagesPerHost = 6;
    p.messageBytes = 512;
    p.seed = 42;
    FabricTrafficGen gen(s, topo.hosts, topo.hostGroup, p);
    for (unsigned h = 0; h < topo.hosts.size(); ++h)
        for (unsigned j = 0; j < p.messagesPerHost; ++j) {
            const unsigned d = gen.destination(h, j);
            ASSERT_LT(d, topo.hosts.size());
            EXPECT_NE(d, h);
            // Pure function: same answer every time.
            EXPECT_EQ(gen.destination(h, j), d);
        }
    gen.start();
    s.run();
    const FabricTrafficReport r = gen.report();
    EXPECT_EQ(r.postedMessages, 16u * 6u);
    EXPECT_EQ(r.deliveredMessages, r.postedMessages);
    EXPECT_EQ(r.deliveredBytes, r.postedMessages * 512u);
    EXPECT_EQ(r.intraGroupMessages + r.interGroupMessages,
              r.deliveredMessages);
    EXPECT_GT(r.aggregateGBps, 0.0);
    EXPECT_GT(r.latencyMeanNs, 0.0);
}

TEST(FabricTraffic, GroupLocalNeverLeavesThePod)
{
    Simulation s;
    Fabric fabric(s);
    const Topology topo = buildFatTree(fabric, FatTreeParams{4});

    FabricTrafficParams p;
    p.pattern = FabricTrafficParams::Pattern::GroupLocal;
    p.messagesPerHost = 5;
    FabricTrafficGen gen(s, topo.hosts, topo.hostGroup, p);
    for (unsigned h = 0; h < topo.hosts.size(); ++h)
        for (unsigned j = 0; j < p.messagesPerHost; ++j) {
            const unsigned d = gen.destination(h, j);
            EXPECT_NE(d, h);
            EXPECT_EQ(topo.hostGroup[d], topo.hostGroup[h]);
        }
    gen.start();
    s.run();
    const FabricTrafficReport r = gen.report();
    EXPECT_EQ(r.deliveredMessages, 16u * 5u);
    EXPECT_EQ(r.interGroupMessages, 0u);
    EXPECT_EQ(r.intraGroupMessages, r.deliveredMessages);
}

TEST(FabricTraffic, PermutationAlwaysCrossesGroups)
{
    Simulation s;
    Fabric fabric(s);
    const DragonflyParams params{2, 2, 1};
    const Topology topo = buildDragonfly(fabric, params);

    FabricTrafficParams p;
    p.pattern = FabricTrafficParams::Pattern::Permutation;
    p.messagesPerHost = 4;
    p.seed = 7;
    FabricTrafficGen gen(s, topo.hosts, topo.hostGroup, p);
    // A fixed permutation: destination ignores the round, never maps
    // two senders to one target, and always leaves the group.
    std::set<unsigned> targets;
    for (unsigned h = 0; h < topo.hosts.size(); ++h) {
        const unsigned d = gen.destination(h, 0);
        EXPECT_EQ(gen.destination(h, 3), d);
        EXPECT_NE(topo.hostGroup[d], topo.hostGroup[h]);
        targets.insert(d);
    }
    EXPECT_EQ(targets.size(), topo.hosts.size());
    gen.start();
    s.run();
    const FabricTrafficReport r = gen.report();
    EXPECT_EQ(r.deliveredMessages, 12u * 4u);
    EXPECT_EQ(r.intraGroupMessages, 0u);
    EXPECT_EQ(r.interGroupMessages, r.deliveredMessages);
}

} // namespace
