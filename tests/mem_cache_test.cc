/**
 * @file
 * Unit and property tests for the cache, TLB and RDRAM models.
 */

#include <gtest/gtest.h>

#include <vector>

#include "mem/Cache.hh"
#include "mem/Rdram.hh"
#include "mem/Tlb.hh"
#include "sim/Random.hh"

namespace {

using namespace san::mem;
using namespace san::sim;

CacheParams
tiny(unsigned size, unsigned assoc, unsigned line, bool classify = true)
{
    return CacheParams{"tiny", size, assoc, line, classify};
}

TEST(Cache, FirstTouchIsColdMissThenHit)
{
    Cache c(tiny(1024, 2, 64));
    auto first = c.access(0x1000, false);
    EXPECT_FALSE(first.hit);
    EXPECT_EQ(first.missClass, MissClass::Cold);
    auto second = c.access(0x1000 + 63, false); // same line
    EXPECT_TRUE(second.hit);
    EXPECT_EQ(c.hits(), 1u);
    EXPECT_EQ(c.misses(), 1u);
}

TEST(Cache, LruEvictsLeastRecentlyUsedWay)
{
    // 2-way, 64 B lines, 2 sets (256 B total).
    Cache c(tiny(256, 2, 64));
    // Three lines mapping to set 0: line addresses 0, 2, 4.
    c.access(0 * 64, false);
    c.access(2 * 64, false);
    c.access(0 * 64, false);   // refresh line 0; line 2 is now LRU
    c.access(4 * 64, false);   // evicts line 2
    EXPECT_TRUE(c.contains(0 * 64));
    EXPECT_FALSE(c.contains(2 * 64));
    EXPECT_TRUE(c.contains(4 * 64));
}

TEST(Cache, DirtyEvictionReportsWriteback)
{
    Cache c(tiny(128, 1, 64)); // direct-mapped, 2 sets
    c.access(0, true);          // dirty line 0 in set 0
    auto res = c.access(2 * 64, false); // same set, evicts dirty line
    EXPECT_TRUE(res.writeback);
    EXPECT_EQ(c.writebacks(), 1u);
}

TEST(Cache, ConflictVsCapacityClassification)
{
    // Direct-mapped 2-set cache: lines 0 and 2 conflict while the
    // total working set (2 lines) fits in capacity.
    Cache c(tiny(128, 1, 64));
    c.access(0 * 64, false);  // cold
    c.access(2 * 64, false);  // cold, evicts 0
    c.access(0 * 64, false);  // miss again: conflict (fits FA shadow)
    EXPECT_EQ(c.coldMisses(), 2u);
    EXPECT_EQ(c.conflictMisses(), 1u);
    EXPECT_EQ(c.capacityMisses(), 0u);
}

TEST(Cache, CapacityMissWhenWorkingSetExceedsSize)
{
    // Fully-associative 2-line cache; stream 3 lines cyclically.
    Cache c(tiny(128, 2, 64));
    for (int round = 0; round < 2; ++round)
        for (Addr line = 0; line < 3; ++line)
            c.access(line * 64, false);
    EXPECT_EQ(c.coldMisses(), 3u);
    EXPECT_GT(c.capacityMisses(), 0u);
    EXPECT_EQ(c.conflictMisses(), 0u);
}

TEST(Cache, InvalidateAllEmptiesCache)
{
    Cache c(tiny(1024, 2, 64));
    c.access(0x40, false);
    EXPECT_TRUE(c.contains(0x40));
    c.invalidateAll();
    EXPECT_FALSE(c.contains(0x40));
}

TEST(Cache, SequentialStreamMissesOncePerLine)
{
    Cache c(tiny(32 * 1024, 2, 128, false));
    const std::uint64_t bytes = 64 * 1024;
    for (Addr a = 0; a < bytes; a += 8)
        c.access(a, false);
    EXPECT_EQ(c.misses(), bytes / 128);
    EXPECT_EQ(c.hits(), bytes / 8 - bytes / 128);
}

/** Property: hits + misses == accesses, misses >= distinct lines. */
class CacheProperty
    : public ::testing::TestWithParam<std::tuple<unsigned, unsigned,
                                                 unsigned>>
{};

TEST_P(CacheProperty, AccountingInvariants)
{
    auto [size, assoc, line] = GetParam();
    Cache c(tiny(size, assoc, line));
    Random rng(size * 31 + assoc * 7 + line);
    const int n = 5000;
    std::uint64_t accesses = 0;
    for (int i = 0; i < n; ++i) {
        c.access(rng.below(64 * 1024), rng.chance(0.3));
        ++accesses;
    }
    EXPECT_EQ(c.hits() + c.misses(), accesses);
    EXPECT_EQ(c.coldMisses() + c.capacityMisses() + c.conflictMisses(),
              c.misses());
    EXPECT_LE(c.writebacks(), c.misses());
    EXPECT_GE(c.missRate(), 0.0);
    EXPECT_LE(c.missRate(), 1.0);
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, CacheProperty,
    ::testing::Values(std::tuple{1024u, 1u, 32u},
                      std::tuple{1024u, 2u, 32u},
                      std::tuple{4096u, 2u, 64u},
                      std::tuple{8192u, 4u, 128u},
                      std::tuple{512u, 8u, 64u}));

TEST(Tlb, HitAfterFillAndLruEviction)
{
    Tlb tlb(2, 4096);
    EXPECT_FALSE(tlb.access(0x0000));      // page 0 miss
    EXPECT_TRUE(tlb.access(0x0800));       // page 0 hit
    EXPECT_FALSE(tlb.access(0x1000));      // page 1 miss
    EXPECT_FALSE(tlb.access(0x2000));      // page 2 miss, evicts page 0
    EXPECT_FALSE(tlb.access(0x0000));      // page 0 again: miss
    EXPECT_EQ(tlb.hits(), 1u);
    EXPECT_EQ(tlb.misses(), 4u);
}

TEST(Tlb, FlushForgetsEverything)
{
    Tlb tlb(64, 4096);
    tlb.access(0);
    tlb.flush();
    EXPECT_FALSE(tlb.access(0));
}

TEST(Rdram, PageHitFasterThanMiss)
{
    Rdram mem;
    auto miss = mem.access(0, 128, 0);
    EXPECT_FALSE(miss.pageHit);
    auto hit = mem.access(128, 128, miss.complete);
    EXPECT_TRUE(hit.pageHit);
    EXPECT_EQ(miss.complete - miss.start, ns(122) + ns(80));
    EXPECT_EQ(hit.complete - hit.start, ns(100) + ns(80));
}

TEST(Rdram, ChannelOccupancySerializesAccesses)
{
    Rdram mem;
    auto a = mem.access(0, 128, 0);
    auto b = mem.access(1 * san::sim::MiB, 128, 0); // different bank
    // Second access cannot start before the first releases the bus.
    EXPECT_EQ(b.start, a.start + ns(80));
}

TEST(Rdram, BandwidthBoundStreaming)
{
    // 1 MB of pipelined 128 B line fills (all issued immediately)
    // completes at channel bandwidth: ~1MB / 1.6GB/s plus one access
    // latency at the tail.
    Rdram mem;
    Tick done = 0;
    for (Addr a = 0; a < MiB; a += 128)
        done = std::max(done, mem.access(a, 128, 0).complete);
    const double seconds = toSeconds(done);
    EXPECT_GE(seconds, 1.0 * MiB / 1.6e9);
    EXPECT_LE(seconds, 1.0 * MiB / 1.6e9 + 200e-9);
    EXPECT_EQ(mem.bytesTransferred(), MiB);
}

TEST(Rdram, DistinctBanksTrackDistinctPages)
{
    RdramParams p;
    p.banks = 2;
    p.pageBytes = 1024;
    Rdram mem(p);
    Tick t = 0;
    t = mem.access(0, 64, t).complete;        // bank 0, page 0
    t = mem.access(1024, 64, t).complete;     // bank 1, page 1
    auto again0 = mem.access(64, 64, t);      // bank 0 page 0: hit
    auto again1 = mem.access(1024 + 64, 64, again0.complete);
    EXPECT_TRUE(again0.pageHit);
    EXPECT_TRUE(again1.pageHit);
}

} // namespace
