/**
 * @file
 * Recovery-invariant tests: benchmarks driven through injected link
 * corruption, credit loss, handler crashes and disk timeouts must
 * still produce the fault-free answer, with the recovery machinery
 * (retransmits, failovers, retries) visibly engaged. Exactly-once
 * delivery is asserted via the host I/O byte counters: retransmitted
 * data must never be double-counted.
 */

#include <gtest/gtest.h>

#include "apps/Grep.hh"
#include "apps/MpegFilter.hh"
#include "fault/FaultPlan.hh"
#include "net/Link.hh"
#include "sim/Simulation.hh"

namespace {

using namespace san;
using fault::FaultKind;
using fault::FaultPlan;

/** Install a plan for one test; restore the no-fault default after. */
struct PlanGuard {
    explicit PlanGuard(std::uint64_t seed = FaultPlan::defaultSeed)
        : plan(seed)
    {
        fault::globalPlan() = &plan;
    }
    ~PlanGuard() { fault::globalPlan() = nullptr; }
    FaultPlan plan;
};

apps::GrepParams
grepParams()
{
    apps::GrepParams p;
    p.fileBytes = 70 * 1024; // 1024 lines
    return p;
}

void
addSpec(FaultPlan &plan, FaultKind kind, double rate)
{
    fault::FaultSpec spec;
    spec.kind = kind;
    spec.rate = rate;
    plan.addSpec(spec);
}

TEST(Recovery, LinkBitErrorsAreRetransmittedExactlyOnce)
{
    const apps::GrepParams p = grepParams();
    const apps::RunStats bare = apps::runGrep(apps::Mode::Active, p);

    PlanGuard guard;
    addSpec(guard.plan, FaultKind::LinkBitError, 5e-6);
    const apps::RunStats r = apps::runGrep(apps::Mode::Active, p);

    EXPECT_GT(r.faults.injected, 0u);
    EXPECT_GT(r.faults.crcDrops, 0u);
    EXPECT_GT(r.faults.retransmits, 0u);
    EXPECT_EQ(r.faults.flowAborts, 0u);
    // The answer is the fault-free answer...
    EXPECT_EQ(r.checksum, bare.checksum);
    // ...and so is every delivered byte: duplicates are dropped
    // before the adapters' traffic accounting (exactly-once).
    EXPECT_EQ(r.hostIoBytes, bare.hostIoBytes);
}

TEST(Recovery, AllModesSurviveLinkBitErrors)
{
    const apps::GrepParams p = grepParams();
    const apps::RunStats bare = apps::runGrep(apps::Mode::Normal, p);
    for (apps::Mode mode : apps::allModes) {
        PlanGuard guard;
        addSpec(guard.plan, FaultKind::LinkBitError, 2e-6);
        const apps::RunStats r = apps::runGrep(mode, p);
        EXPECT_EQ(r.checksum, bare.checksum)
            << "mode " << apps::modeName(mode);
        EXPECT_EQ(r.faults.flowAborts, 0u);
    }
}

TEST(Recovery, ForcedHandlerCrashFailsOver)
{
    const apps::GrepParams p = grepParams();
    const apps::RunStats bare = apps::runGrep(apps::Mode::Active, p);

    PlanGuard guard;
    fault::FaultEvent ev;
    ev.at = 0;
    ev.kind = FaultKind::HandlerCrash;
    ev.target = "1"; // grep's handler id
    guard.plan.addEvent(ev);
    const apps::RunStats r = apps::runGrep(apps::Mode::Active, p);

    EXPECT_GE(r.faults.failovers, 1u);
    EXPECT_EQ(r.checksum, bare.checksum);
    EXPECT_EQ(r.hostIoBytes, bare.hostIoBytes);
    // Failover costs time but loses no work.
    EXPECT_GE(r.execTime, bare.execTime);
}

TEST(Recovery, CrashUnderCorruptionStillConverges)
{
    const apps::GrepParams p = grepParams();
    const apps::RunStats bare = apps::runGrep(apps::Mode::Active, p);

    PlanGuard guard;
    addSpec(guard.plan, FaultKind::LinkBitError, 2e-6);
    fault::FaultEvent ev;
    ev.at = 0;
    ev.kind = FaultKind::HandlerCrash;
    ev.target = "1";
    guard.plan.addEvent(ev);
    const apps::RunStats r = apps::runGrep(apps::Mode::Active, p);

    EXPECT_GE(r.faults.failovers, 1u);
    EXPECT_GT(r.faults.retransmits, 0u);
    EXPECT_EQ(r.checksum, bare.checksum);
}

TEST(Recovery, CreditLossResyncsWithoutLoss)
{
    const apps::GrepParams p = grepParams();
    const apps::RunStats bare = apps::runGrep(apps::Mode::Normal, p);

    PlanGuard guard;
    addSpec(guard.plan, FaultKind::CreditLoss, 0.001);
    const apps::RunStats r = apps::runGrep(apps::Mode::Normal, p);

    EXPECT_GT(r.faults.creditsLost, 0u);
    EXPECT_EQ(r.checksum, bare.checksum);
    EXPECT_EQ(r.hostIoBytes, bare.hostIoBytes);
}

TEST(Recovery, DiskTimeoutsRetryToCompletion)
{
    apps::MpegParams p;
    p.fileBytes = 256 * 1024;
    const apps::RunStats bare =
        apps::runMpegFilter(apps::Mode::Normal, p);

    PlanGuard guard;
    addSpec(guard.plan, FaultKind::DiskTimeout, 0.05);
    const apps::RunStats r = apps::runMpegFilter(apps::Mode::Normal, p);

    EXPECT_GT(r.faults.ioRetries, 0u);
    EXPECT_EQ(r.faults.ioErrors, 0u); // retries succeed at p=0.05
    EXPECT_EQ(r.checksum, bare.checksum);
    // Timeouts slow the run down but change no data.
    EXPECT_GT(r.execTime, bare.execTime);
}

TEST(Recovery, DiskSpikesOnlyCostTime)
{
    apps::MpegParams p;
    p.fileBytes = 256 * 1024;
    const apps::RunStats bare =
        apps::runMpegFilter(apps::Mode::Normal, p);

    PlanGuard guard;
    addSpec(guard.plan, FaultKind::DiskSpike, 0.02);
    const apps::RunStats r = apps::runMpegFilter(apps::Mode::Normal, p);

    EXPECT_GT(r.faults.injected, 0u);
    EXPECT_EQ(r.checksum, bare.checksum);
    EXPECT_GT(r.execTime, bare.execTime);
}

#ifndef NDEBUG
TEST(LinkCreditDeathTest, ReturnWithoutChargeAsserts)
{
    // Satellite: a credit return that was never charged must trip the
    // underflow assert instead of silently growing the pool.
    EXPECT_DEATH(
        {
            sim::Simulation sim;
            net::Link link(sim, "wire", net::LinkParams{});
            link.returnCredit();
        },
        "underflow");
}
#endif

} // namespace
