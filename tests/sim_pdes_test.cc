/**
 * @file
 * Tests for the sharded conservative-PDES kernel (DESIGN.md §14).
 *
 * The contract under test:
 *
 *  - Partition sanity: Fabric::planShards puts every switch and every
 *    adapter in exactly one shard, the conservative lookahead is the
 *    minimum propagation over shard-boundary links, and the shard
 *    count clamps to the component count.
 *  - Worker-count independence: the shard partition is a function of
 *    the topology, never of the worker-thread count, so the merged
 *    per-shard fingerprint is bit-identical for 1, 2 and 4 workers
 *    and across repeat runs (checked over a 10-seed sweep on a k=4
 *    fat-tree).
 *  - Semantic equality: a figure workload (fig03 MPEG filter, fig16
 *    distributed reduce) computes the same answer — same checksum,
 *    same simulated end time, same event count — threaded or not;
 *    only the fingerprint *encoding* differs between the legacy
 *    single-queue digest and the per-shard merge.
 *  - Degenerate partitions hold: one component per shard (the
 *    maximum cut) still merges deterministically.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "apps/MpegFilter.hh"
#include "apps/Reduction.hh"
#include "net/Topology.hh"
#include "obs/Fingerprint.hh"
#include "sim/Simulation.hh"

namespace {

using namespace san;
using namespace san::net;

// ---------------------------------------------------------------
// Partition sanity on a k=4 fat-tree (20 switches, 16 hosts).
// ---------------------------------------------------------------

TEST(ShardPlan, EveryComponentInExactlyOneShard)
{
    sim::Simulation sim;
    Fabric fabric(sim);
    const Topology topo = buildFatTree(fabric, FatTreeParams{4});

    for (const std::size_t shards : {std::size_t{2}, std::size_t{4},
                                     std::size_t{7}}) {
        const ShardPlan plan = fabric.planShards(shards);
        EXPECT_EQ(plan.shards, shards);
        EXPECT_EQ(plan.switchShard.size(), topo.switchCount());
        EXPECT_EQ(plan.adapterShard.size(), fabric.adapters().size());
        for (const std::size_t s : plan.switchShard)
            EXPECT_LT(s, plan.shards);
        for (const std::size_t s : plan.adapterShard)
            EXPECT_LT(s, plan.shards);
        // A block partition over >= 2 shards must actually use more
        // than one shard.
        EXPECT_GT(*std::max_element(plan.switchShard.begin(),
                                    plan.switchShard.end()),
                  0u);
    }
}

TEST(ShardPlan, LookaheadIsMinBoundaryLinkPropagation)
{
    sim::Simulation sim;
    Fabric fabric(sim);
    const Topology topo = buildFatTree(fabric, FatTreeParams{4});
    (void)topo;

    const ShardPlan plan = fabric.planShards(4);
    EXPECT_GT(plan.boundaryLinks, 0u);
    // Every link in this build uses the default LinkParams, so the
    // minimum over any non-empty boundary set is that propagation.
    EXPECT_EQ(plan.lookahead, LinkParams{}.propagation);

    // One shard: no boundary, lookahead degenerates to "infinite".
    const ShardPlan solo = fabric.planShards(1);
    EXPECT_EQ(solo.boundaryLinks, 0u);
    EXPECT_EQ(solo.lookahead, sim::maxTick);
}

TEST(ShardPlan, ShardCountClampsToComponentCount)
{
    sim::Simulation sim;
    Fabric fabric(sim);
    const Topology topo = buildFatTree(fabric, FatTreeParams{4});

    const std::size_t units =
        topo.switchCount() + fabric.adapters().size();
    const ShardPlan plan = fabric.planShards(units + 100);
    EXPECT_EQ(plan.shards, units);

    // The degenerate maximum cut: every component alone. All shard
    // ids distinct across switches and adapters together.
    std::vector<bool> used(plan.shards, false);
    for (const std::size_t s : plan.switchShard) {
        EXPECT_FALSE(used[s]);
        used[s] = true;
    }
    for (const std::size_t s : plan.adapterShard) {
        EXPECT_FALSE(used[s]);
        used[s] = true;
    }
}

// ---------------------------------------------------------------
// A small deterministic cross-fabric workload on a k=4 fat-tree:
// every host sends a few messages to a seed-chosen peer; the peer
// side just drains. Spawns are pinned to the sender's shard exactly
// as the production benches do.
// ---------------------------------------------------------------

sim::Task
pump(Adapter &host, NodeId dst, unsigned messages, std::uint32_t bytes,
     sim::Tick spacing, std::uint32_t tag)
{
    for (unsigned j = 0; j < messages; ++j) {
        host.sendMessage(dst, bytes, std::nullopt, nullptr,
                         tag * 64 + j + 1);
        co_await sim::Delay{spacing};
    }
}

sim::Task
drain(Adapter &host, std::uint64_t expected, std::uint64_t *bytes)
{
    for (std::uint64_t i = 0; i < expected; ++i) {
        const Message m = co_await host.recvQueue().pop();
        *bytes += m.bytes;
    }
}

/** Run the workload on S shards with @p workers threads; returns the
 * merged fingerprint (and the total bytes drained via @p bytes_out,
 * for a semantic cross-check). */
std::uint64_t
fatTreeRun(std::uint64_t seed, std::size_t shards, unsigned workers,
           std::uint64_t *bytes_out = nullptr)
{
    sim::Simulation sim;
    Fabric fabric(sim);
    const Topology topo = buildFatTree(fabric, FatTreeParams{4});
    const unsigned n = static_cast<unsigned>(topo.hosts.size());

    const ShardPlan plan = fabric.planShards(shards);
    fabric.applyShardPlan(plan);
    obs::ShardedFingerprint fp;
    fp.attach(sim);

    // Seed-dependent peer choice and message count: a cheap way to
    // get 10 distinct event streams without a full RNG workload.
    std::vector<std::uint64_t> expected(n, 0);
    struct Plan {
        unsigned src, dst, messages;
    };
    std::vector<Plan> sends;
    for (unsigned h = 0; h < n; ++h) {
        const unsigned peer =
            static_cast<unsigned>((h * 7 + seed * 5 + 3) % n);
        const unsigned dst = peer == h ? (h + 1) % n : peer;
        const unsigned messages = 2 + (h + seed) % 3;
        sends.push_back({h, dst, messages});
        expected[dst] += messages;
    }
    std::vector<std::uint64_t> drained(n, 0);
    for (unsigned h = 0; h < n; ++h) {
        sim::ShardGuard guard(
            sim,
            plan.adapterShard[fabric.adapterIndex(*topo.hosts[h])]);
        if (expected[h] > 0)
            sim.spawn(
                drain(*topo.hosts[h], expected[h], &drained[h]));
    }
    for (const Plan &p : sends) {
        sim::ShardGuard guard(
            sim, plan.adapterShard[fabric.adapterIndex(
                     *topo.hosts[p.src])]);
        sim.spawn(pump(*topo.hosts[p.src], topo.hosts[p.dst]->id(),
                       p.messages, 2048, sim::us(1), p.src));
    }

    sim.runSharded(workers);
    if (bytes_out) {
        *bytes_out = 0;
        for (const std::uint64_t b : drained)
            *bytes_out += b;
    }
    return fp.value();
}

TEST(ShardedRun, FingerprintIndependentOfWorkerCount)
{
    // 10 seeds x {1, 2, 4} workers on an 8-shard partition: the
    // merged digest depends on the partition and the workload only.
    for (std::uint64_t seed = 1; seed <= 10; ++seed) {
        std::uint64_t bytes1 = 0, bytes2 = 0, bytes4 = 0;
        const std::uint64_t w1 = fatTreeRun(seed, 8, 1, &bytes1);
        const std::uint64_t w2 = fatTreeRun(seed, 8, 2, &bytes2);
        const std::uint64_t w4 = fatTreeRun(seed, 8, 4, &bytes4);
        EXPECT_EQ(w1, w2) << "seed " << seed;
        EXPECT_EQ(w1, w4) << "seed " << seed;
        EXPECT_EQ(bytes1, bytes2) << "seed " << seed;
        EXPECT_EQ(bytes1, bytes4) << "seed " << seed;
        EXPECT_GT(bytes1, 0u) << "seed " << seed;
    }
}

TEST(ShardedRun, RepeatRunsAreBitStable)
{
    for (std::uint64_t seed = 1; seed <= 3; ++seed) {
        const std::uint64_t a = fatTreeRun(seed, 8, 4);
        const std::uint64_t b = fatTreeRun(seed, 8, 4);
        EXPECT_EQ(a, b) << "seed " << seed;
    }
    // Different seeds must actually produce different streams, or
    // the equality checks above prove nothing.
    EXPECT_NE(fatTreeRun(1, 8, 4), fatTreeRun(2, 8, 4));
}

TEST(ShardedRun, OneComponentPerShardStress)
{
    sim::Simulation probe;
    Fabric probeFabric(probe);
    const Topology t = buildFatTree(probeFabric, FatTreeParams{4});
    const std::size_t units =
        t.switchCount() + probeFabric.adapters().size();

    const std::uint64_t w1 = fatTreeRun(5, units, 1);
    const std::uint64_t w4 = fatTreeRun(5, units, 4);
    EXPECT_EQ(w1, w4);
}

// ---------------------------------------------------------------
// Figure workloads: threaded and unthreaded runs must compute the
// same simulation (same checksum / end time / event count); the
// threaded fingerprint is stable across worker counts.
// ---------------------------------------------------------------

TEST(ShardedApps, Fig16ReductionSemanticsMatchUnthreaded)
{
    apps::ReductionParams params;
    params.nodes = 16;
    const apps::ReductionRun base =
        runReduction(true, apps::ReduceKind::Distributed, params);

    params.threads = 2;
    const apps::ReductionRun two =
        runReduction(true, apps::ReduceKind::Distributed, params);
    params.threads = 4;
    const apps::ReductionRun four =
        runReduction(true, apps::ReduceKind::Distributed, params);
    const apps::ReductionRun fourAgain =
        runReduction(true, apps::ReduceKind::Distributed, params);

    EXPECT_TRUE(base.correct);
    EXPECT_TRUE(two.correct);
    EXPECT_TRUE(four.correct);
    EXPECT_EQ(base.checksum, two.checksum);
    EXPECT_EQ(base.checksum, four.checksum);
    EXPECT_EQ(base.latency, two.latency);
    EXPECT_EQ(base.latency, four.latency);
    // Cross-shard handoffs add events (message delivery, deferred
    // credit flits), so the sharded total exceeds the sequential
    // one — but it is one number for every worker count.
    EXPECT_EQ(two.events, four.events);
    EXPECT_GE(two.events, base.events);
    // The shard partition is per-switch regardless of the worker
    // count, so the merged digest is one value for all N > 1 and
    // stable across repeats.
    EXPECT_EQ(two.fingerprint, four.fingerprint);
    EXPECT_EQ(four.fingerprint, fourAgain.fingerprint);
    EXPECT_NE(four.fingerprint, 0u);

    // Normal (host-tree) mode shards the same way.
    params.threads = 1;
    const apps::ReductionRun nbase =
        runReduction(false, apps::ReduceKind::Distributed, params);
    params.threads = 4;
    const apps::ReductionRun nfour =
        runReduction(false, apps::ReduceKind::Distributed, params);
    EXPECT_EQ(nbase.checksum, nfour.checksum);
    EXPECT_EQ(nbase.latency, nfour.latency);
    EXPECT_GE(nfour.events, nbase.events);
}

TEST(ShardedApps, Fig03MpegSemanticsMatchUnthreaded)
{
    apps::MpegParams params;
    params.fileBytes = 256 * 1024; // --quick-sized, tests stay fast
    const apps::RunStats base =
        runMpegFilter(apps::Mode::ActivePref, params);

    params.cluster.threads = 2;
    const apps::RunStats two =
        runMpegFilter(apps::Mode::ActivePref, params);
    params.cluster.threads = 4;
    const apps::RunStats four =
        runMpegFilter(apps::Mode::ActivePref, params);
    const apps::RunStats fourAgain =
        runMpegFilter(apps::Mode::ActivePref, params);

    EXPECT_EQ(base.checksum, two.checksum);
    EXPECT_EQ(base.checksum, four.checksum);
    EXPECT_EQ(base.execTime, two.execTime);
    EXPECT_EQ(base.execTime, four.execTime);
    EXPECT_EQ(base.hostIoBytes, two.hostIoBytes);
    EXPECT_EQ(base.hostIoBytes, four.hostIoBytes);
    EXPECT_EQ(two.eventsExecuted, four.eventsExecuted);
    EXPECT_GE(two.eventsExecuted, base.eventsExecuted);
    EXPECT_EQ(two.fingerprint, four.fingerprint);
    EXPECT_EQ(four.fingerprint, fourAgain.fingerprint);
}

} // namespace
