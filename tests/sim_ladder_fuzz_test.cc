/**
 * @file
 * Cross-kernel determinism fuzz: the ladder scheduler must execute
 * EXACTLY the order the plain binary heap executes.
 *
 * The same seeded random schedule — self-rescheduling callbacks,
 * same-tick wakeups (postNow), short-horizon churn, far-future jumps,
 * and runUntil slices that land mid-bucket — is replayed through
 * HeapEventQueue (the PR 4 kernel, kept as the oracle) and EventQueue
 * (the ladder). Every executed event logs (tick, spawn-id); the two
 * logs must match element for element. Any ordering divergence —
 * a bucket adopted out of order, a spill refilled late, a mid-step
 * schedule filed into the wrong tier — cascades into the log and
 * fails the comparison.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <utility>
#include <vector>

#include "sim/EventQueue.hh"
#include "sim/Random.hh"
#include "sim/Types.hh"

namespace {

using namespace san::sim;

/** One replay of the generated schedule through a queue kernel. */
template <typename Queue>
class Driver
{
  public:
    explicit Driver(std::uint64_t seed) : rng_(seed) {}

    std::vector<std::pair<Tick, int>>
    replay()
    {
        // Seed load: a mix of near events (inside the ladder's
        // initial window) and far-future ones (spill heap).
        for (int i = 0; i < 64; ++i)
            spawnAt(rng_.below(ms(1)));
        for (int i = 0; i < 16; ++i)
            spawnAt(ms(5) + rng_.below(ms(50)));

        // Sliced execution: limits land anywhere, including inside a
        // bucket span and on dead spans with no events at all.
        Tick limit = 0;
        for (int s = 0; s < 40; ++s) {
            limit += rng_.below(us(200)) + 1;
            q_.runUntil(limit);
            log_.emplace_back(q_.now(), -1); // window boundary marker
        }
        q_.run();
        log_.emplace_back(q_.now(), -2); // final-time marker
        return std::move(log_);
    }

  private:
    void
    fire(int id)
    {
        log_.emplace_back(q_.now(), id);
        if (spawned_ >= maxSpawn)
            return;
        // Follow-up mix. The rng draws happen in execution order, so
        // they are identical across kernels exactly when the
        // execution orders are — any divergence amplifies itself.
        const std::uint64_t r = rng_.below(100);
        if (r < 45) // short horizon: the common simulator pattern
            spawnAt(q_.now() + rng_.below(us(2)) + 1);
        if (r < 20) // zero-delay wakeup
            spawnAt(q_.now());
        if (r < 8) // far-future jump: forces spill + later rebase
            spawnAt(q_.now() + ms(2) + rng_.below(ms(20)));
        if (r < 3) // "past" schedule: exercises the clamp
            spawnAt(q_.now() / 2);
    }

    void
    spawnAt(Tick when)
    {
        const int id = spawned_++;
        if (when == q_.now())
            q_.postNow([this, id] { fire(id); });
        else
            q_.schedule(when, [this, id] { fire(id); });
    }

    static constexpr int maxSpawn = 4000;

    Queue q_;
    Random rng_;
    std::vector<std::pair<Tick, int>> log_;
    int spawned_ = 0;
};

class LadderFuzz : public ::testing::TestWithParam<std::uint64_t>
{};

TEST_P(LadderFuzz, LadderExecutionOrderMatchesHeapExactly)
{
    const auto heap = Driver<HeapEventQueue>(GetParam()).replay();
    const auto ladder = Driver<EventQueue>(GetParam()).replay();
    ASSERT_EQ(heap.size(), ladder.size());
    for (std::size_t i = 0; i < heap.size(); ++i) {
        ASSERT_EQ(heap[i], ladder[i])
            << "divergence at log entry " << i << ": heap=("
            << heap[i].first << "," << heap[i].second << ") ladder=("
            << ladder[i].first << "," << ladder[i].second << ")";
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LadderFuzz,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 42,
                                           0xc0ffee, 0xdeadbeef,
                                           0x5eed5eed5eed5eedull));

} // namespace
