/**
 * @file
 * Fault-plan unit tests: flag parsing, per-site stream independence,
 * and the determinism contract — the same plan seed reproduces the
 * same fault schedule (and therefore the same run fingerprint), a
 * different seed produces a different schedule that still completes
 * correctly.
 */

#include <gtest/gtest.h>

#include <vector>

#include "apps/Grep.hh"
#include "fault/FaultPlan.hh"
#include "net/Link.hh"
#include "net/Packet.hh"
#include "sim/Simulation.hh"
#include "sim/Types.hh"

namespace {

using namespace san;
using fault::FaultKind;
using fault::FaultPlan;

/** Install a plan for one test; restore the no-fault default after. */
struct PlanGuard {
    explicit PlanGuard(std::uint64_t seed = FaultPlan::defaultSeed)
        : plan(seed)
    {
        fault::globalPlan() = &plan;
    }
    ~PlanGuard() { fault::globalPlan() = nullptr; }
    FaultPlan plan;
};

TEST(FaultSpecParse, AcceptsKindRateAndOptionalSeed)
{
    std::string err;
    auto spec = FaultPlan::parseSpec("link-ber:1e-6", &err);
    ASSERT_TRUE(spec.has_value()) << err;
    EXPECT_EQ(spec->kind, FaultKind::LinkBitError);
    EXPECT_DOUBLE_EQ(spec->rate, 1e-6);
    EXPECT_FALSE(spec->seeded);

    spec = FaultPlan::parseSpec("handler-crash:0.5:42", &err);
    ASSERT_TRUE(spec.has_value()) << err;
    EXPECT_EQ(spec->kind, FaultKind::HandlerCrash);
    EXPECT_DOUBLE_EQ(spec->rate, 0.5);
    EXPECT_TRUE(spec->seeded);
    EXPECT_EQ(spec->seed, 42u);

    // "none:0" arms the recovery protocol without injecting.
    spec = FaultPlan::parseSpec("none:0", &err);
    ASSERT_TRUE(spec.has_value()) << err;
    EXPECT_EQ(spec->kind, FaultKind::None);
    EXPECT_DOUBLE_EQ(spec->rate, 0.0);
}

TEST(FaultSpecParse, RejectsMalformedInput)
{
    std::string err;
    EXPECT_FALSE(FaultPlan::parseSpec("", &err).has_value());
    EXPECT_FALSE(err.empty());
    EXPECT_FALSE(FaultPlan::parseSpec("link-ber", &err).has_value());
    EXPECT_FALSE(
        FaultPlan::parseSpec("cosmic-ray:1e-6", &err).has_value());
    EXPECT_FALSE(
        FaultPlan::parseSpec("link-ber:notanumber", &err).has_value());
    EXPECT_FALSE(FaultPlan::parseSpec("link-ber:-1", &err).has_value());
}

TEST(FaultAtParse, AcceptsTickKindTarget)
{
    std::string err;
    auto ev = FaultPlan::parseAt("0:handler-crash:1", &err);
    ASSERT_TRUE(ev.has_value()) << err;
    EXPECT_EQ(ev->at, 0u);
    EXPECT_EQ(ev->kind, FaultKind::HandlerCrash);
    EXPECT_EQ(ev->target, "1");

    // Targets may themselves contain ':'-free component names.
    ev = FaultPlan::parseAt("5000000:disk-timeout:tca0", &err);
    ASSERT_TRUE(ev.has_value()) << err;
    EXPECT_EQ(ev->at, 5000000u);
    EXPECT_EQ(ev->kind, FaultKind::DiskTimeout);
    EXPECT_EQ(ev->target, "tca0");
}

TEST(FaultAtParse, RejectsMalformedInput)
{
    std::string err;
    EXPECT_FALSE(FaultPlan::parseAt("", &err).has_value());
    EXPECT_FALSE(err.empty());
    EXPECT_FALSE(FaultPlan::parseAt("abc:link-ber:x", &err).has_value());
    EXPECT_FALSE(FaultPlan::parseAt("0:bogus:x", &err).has_value());
    EXPECT_FALSE(FaultPlan::parseAt("0:link-ber", &err).has_value());
}

TEST(FaultSite, StreamsAreIndependentOfOtherSpecs)
{
    // A site's draw sequence depends only on (plan seed, kind, site
    // name) — adding an unrelated spec must not perturb it.
    fault::FaultSpec ber;
    ber.kind = FaultKind::LinkBitError;
    ber.rate = 0.5;
    fault::FaultSpec timeout;
    timeout.kind = FaultKind::DiskTimeout;
    timeout.rate = 0.5;

    FaultPlan lone(123);
    lone.addSpec(ber);
    FaultPlan crowded(123);
    crowded.addSpec(ber);
    crowded.addSpec(timeout);
    // Exercise the unrelated site first so its draws interleave.
    auto *noise = crowded.site(FaultKind::DiskTimeout, "tca0");
    ASSERT_NE(noise, nullptr);
    noise->fire();

    auto *a = lone.site(FaultKind::LinkBitError, "wire");
    auto *b = crowded.site(FaultKind::LinkBitError, "wire");
    ASSERT_NE(a, nullptr);
    ASSERT_NE(b, nullptr);
    for (int i = 0; i < 256; ++i) {
        EXPECT_EQ(a->fire(), b->fire()) << "draw " << i;
        noise->fire();
    }
}

TEST(FaultSite, DistinctNamesYieldDistinctStreams)
{
    fault::FaultSpec spec;
    spec.kind = FaultKind::LinkBitError;
    spec.rate = 0.5;
    FaultPlan plan(7);
    plan.addSpec(spec);
    auto *a = plan.site(FaultKind::LinkBitError, "linkA");
    auto *b = plan.site(FaultKind::LinkBitError, "linkB");
    ASSERT_NE(a, nullptr);
    ASSERT_NE(b, nullptr);
    bool differ = false;
    for (int i = 0; i < 256 && !differ; ++i)
        differ = a->fire() != b->fire();
    EXPECT_TRUE(differ) << "256 draws at p=0.5 never diverged";
}

TEST(FaultSite, SiteIsNullWithoutMatchingSpec)
{
    FaultPlan plan;
    EXPECT_EQ(plan.site(FaultKind::LinkBitError, "wire"), nullptr);
}

TEST(FaultEvents, ConsumedOncePerTarget)
{
    FaultPlan plan;
    fault::FaultEvent ev;
    ev.at = 100;
    ev.kind = FaultKind::HandlerCrash;
    ev.target = "1";
    plan.addEvent(ev);
    EXPECT_TRUE(plan.eventPending(FaultKind::HandlerCrash));
    // Not yet due, wrong target, then due exactly once.
    EXPECT_FALSE(plan.eventDue(FaultKind::HandlerCrash, "1", 99));
    EXPECT_FALSE(plan.eventDue(FaultKind::HandlerCrash, "2", 100));
    EXPECT_TRUE(plan.eventDue(FaultKind::HandlerCrash, "1", 100));
    EXPECT_FALSE(plan.eventDue(FaultKind::HandlerCrash, "1", 100));
    EXPECT_EQ(plan.injected(), 1u);
    EXPECT_EQ(plan.injectedOf(FaultKind::HandlerCrash), 1u);
}

apps::RunStats
grepUnder(std::uint64_t seed, double ber)
{
    PlanGuard guard(seed);
    fault::FaultSpec spec;
    spec.kind = FaultKind::LinkBitError;
    spec.rate = ber;
    guard.plan.addSpec(spec);
    apps::GrepParams p;
    p.fileBytes = 70 * 1024; // 1024 lines
    return apps::runGrep(apps::Mode::Active, p);
}

TEST(FaultDeterminism, SameSeedReproducesFingerprint)
{
    const apps::RunStats a = grepUnder(11, 2e-6);
    const apps::RunStats b = grepUnder(11, 2e-6);
    EXPECT_EQ(a.fingerprint, b.fingerprint);
    EXPECT_EQ(a.execTime, b.execTime);
    EXPECT_EQ(a.faults.injected, b.faults.injected);
    EXPECT_EQ(a.faults.retransmits, b.faults.retransmits);
}

TEST(FaultDeterminism, DifferentSeedChangesScheduleNotCorrectness)
{
    // High enough rate that some packet is hit under either seed.
    const apps::RunStats a = grepUnder(11, 5e-6);
    const apps::RunStats b = grepUnder(12, 5e-6);
    EXPECT_GT(a.faults.injected, 0u);
    EXPECT_GT(b.faults.injected, 0u);
    EXPECT_NE(a.fingerprint, b.fingerprint);
    // Both schedules recover to the same answer.
    EXPECT_EQ(a.checksum, b.checksum);
}

TEST(FaultDeterminism, NoneSpecArmsProtocolWithoutInjecting)
{
    apps::GrepParams p;
    p.fileBytes = 70 * 1024;
    const apps::RunStats bare = apps::runGrep(apps::Mode::Active, p);

    PlanGuard guard;
    fault::FaultSpec spec; // kind None, rate 0
    guard.plan.addSpec(spec);
    const apps::RunStats armed = apps::runGrep(apps::Mode::Active, p);
    EXPECT_TRUE(armed.faults.active);
    EXPECT_EQ(armed.faults.injected, 0u);
    EXPECT_EQ(armed.faults.retransmits, 0u);
    EXPECT_EQ(armed.faults.flowAborts, 0u);
    // The protocol adds control traffic but must not change results.
    EXPECT_EQ(armed.checksum, bare.checksum);
}

TEST(FaultEvents, BackloggedLinkFiresOneShotAtTransmissionTick)
{
    // Regression test: Link::pump() drains its whole backlog inside a
    // single event (all at the same now()), but each packet's
    // transmission starts when the wire frees up. A one-shot
    // --fault-at TICK bit error must be evaluated against that
    // per-packet transmission tick — evaluated at the enqueue tick it
    // would never fire (TICK is in the future when every check runs)
    // and the fault would silently vanish.
    PlanGuard guard;
    fault::FaultEvent ev;
    ev.at = sim::ns(1056); // 3rd packet: 2 x 528 ns serialization
    ev.kind = FaultKind::LinkBitError;
    ev.target = "l";
    guard.plan.addEvent(ev);

    sim::Simulation s;
    net::LinkParams lp;
    lp.bandwidthBytesPerSec = 1e9; // (512+16) B packet = 528 ns
    lp.propagation = 0;
    lp.credits = 8;
    net::Link link(s, "l", lp); // plan must be installed before this
    std::vector<net::Arrival> got;
    link.setSink([&](const net::Arrival &a) { got.push_back(a); });
    for (unsigned i = 0; i < 5; ++i) {
        net::Packet p;
        p.src = 0;
        p.dst = 1;
        p.payloadBytes = 512;
        p.messageBytes = 512;
        link.send(std::move(p)); // all enqueued at tick 0
    }
    s.run();

    ASSERT_EQ(got.size(), 5u);
    EXPECT_EQ(link.packetsCorrupted(), 1u);
    EXPECT_EQ(guard.plan.injected(), 1u);
    for (unsigned i = 0; i < 5; ++i) {
        // Packet i's first bit goes out at i x 528 ns; exactly the one
        // on the wire at ns(1056) is hit.
        EXPECT_EQ(got[i].start, sim::ns(i * 528)) << "packet " << i;
        EXPECT_EQ(got[i].pkt.corrupt, i == 2) << "packet " << i;
    }
}

} // namespace
