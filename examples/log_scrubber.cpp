/**
 * @file
 * Domain example: a log-scrubbing appliance.
 *
 * A server stores large request logs; an analysis host needs only
 * the error records (~3% of lines). Running the scrubber as a switch
 * handler turns a full-log transfer into an errors-only transfer and
 * frees the analysis host almost entirely — the HashJoin/Grep
 * pattern applied to a systems-operations workload.
 *
 * The example runs the same job twice (host-side scrub vs in-switch
 * scrub) and prints the comparison.
 *
 * Build & run:  ./build/examples/log_scrubber
 */

#include <cstdio>

#include "apps/Cluster.hh"
#include "apps/DetHash.hh"
#include "apps/StreamCommon.hh"

using namespace san;
using namespace san::apps;

namespace {

constexpr std::uint64_t logBytes = 8 * 1024 * 1024;
constexpr std::uint64_t lineBytes = 128;
constexpr std::uint64_t blockBytes = 64 * 1024;
constexpr double errorRate = 0.03;
constexpr std::uint64_t scanInstrPerLine = 90;
constexpr std::uint64_t seed = 0x10c;

bool
isErrorLine(std::uint64_t line)
{
    return detChance(seed, line, errorRate);
}

std::uint64_t
errorsIn(std::uint64_t offset, std::uint64_t len)
{
    std::uint64_t n = 0;
    for (std::uint64_t l = offset / lineBytes;
         l < (offset + len) / lineBytes; ++l)
        n += isErrorLine(l);
    return n;
}

struct Outcome {
    sim::Tick exec;
    double hostUtil;
    std::uint64_t hostBytes;
    std::uint64_t errors;
};

Outcome
runScrub(bool in_switch)
{
    Cluster cluster;
    auto &host = cluster.host();
    auto &sw = cluster.sw();
    const net::NodeId disk = cluster.storage().id();
    std::uint64_t errors = 0;

    if (!in_switch) {
        auto cursor = std::make_shared<std::uint64_t>(0);
        cluster.sim().spawn(normalHostLoop(
            host, disk, logBytes, blockBytes, 2,
            [&errors, cursor](host::Host &h, mem::Addr buf,
                              std::uint64_t bytes) -> sim::Task {
                const std::uint64_t off = *cursor;
                *cursor += bytes;
                errors += errorsIn(off, bytes);
                co_await h.cpu().compute(
                    bytes / lineBytes * scanInstrPerLine);
                co_await h.cpu().touch(buf, bytes,
                                       mem::AccessKind::Load);
            }));
    } else {
        FilterHandler spec;
        spec.fileBytes = logBytes;
        spec.blockBytes = blockBytes;
        spec.processChunk = [&errors](active::HandlerContext &ctx,
                                      const active::StreamChunk &chunk)
            -> sim::ValueTask<std::uint32_t> {
            co_await ctx.awaitValid(chunk, 0, chunk.bytes);
            co_await ctx.compute(
                chunk.bytes / lineBytes * scanInstrPerLine);
            const std::uint64_t n = errorsIn(chunk.address, chunk.bytes);
            errors += n;
            co_return static_cast<std::uint32_t>(n * lineBytes);
        };
        sw.registerHandler(1, "scrub", [spec](active::HandlerContext &c) {
            return runFilterHandler(c, spec);
        });

        ActiveLoop loop;
        loop.storage = disk;
        loop.switchNode = sw.id();
        loop.handlerId = 1;
        loop.fileBytes = logBytes;
        loop.blockBytes = blockBytes;
        loop.outstanding = 2;
        cluster.sim().spawn(activeHostLoop(
            host, loop,
            [](host::Host &h, const net::Message &reply) -> sim::Task {
                if (reply.bytes > 0) {
                    const mem::Addr buf = h.allocBuffer(reply.bytes);
                    co_await h.cpu().touch(buf, reply.bytes,
                                           mem::AccessKind::Load);
                }
            }));
    }

    const sim::Tick end = cluster.sim().run();
    return Outcome{end, host.cpu().breakdown(end).utilization(),
                   host.ioTrafficBytes(), errors};
}

} // namespace

int
main()
{
    const Outcome on_host = runScrub(false);
    const Outcome on_switch = runScrub(true);

    std::printf("log scrubbing, %llu MB log, %.0f%% error lines\n",
                static_cast<unsigned long long>(logBytes >> 20),
                errorRate * 100);
    std::printf("%-14s %12s %12s %14s %10s\n", "where", "time(ms)",
                "host-util", "host-bytes", "errors");
    std::printf("%-14s %12.2f %12.3f %14llu %10llu\n", "host scrub",
                sim::toMillis(on_host.exec), on_host.hostUtil,
                static_cast<unsigned long long>(on_host.hostBytes),
                static_cast<unsigned long long>(on_host.errors));
    std::printf("%-14s %12.2f %12.3f %14llu %10llu\n", "switch scrub",
                sim::toMillis(on_switch.exec), on_switch.hostUtil,
                static_cast<unsigned long long>(on_switch.hostBytes),
                static_cast<unsigned long long>(on_switch.errors));
    if (on_host.errors != on_switch.errors) {
        std::fprintf(stderr, "error-count mismatch!\n");
        return 1;
    }
    std::printf("traffic reduction: %.1fx, host offload: %.1fx\n",
                static_cast<double>(on_host.hostBytes) /
                    static_cast<double>(on_switch.hostBytes),
                on_host.hostUtil / on_switch.hostUtil);
    return 0;
}
