/**
 * @file
 * Domain example: an in-switch L4 load balancer.
 *
 * A pool of clients opens 50k connections through one virtual IP and
 * streams data over them while a tail of connections churns open and
 * closed. The same balancer state machine (src/lb) runs twice: on a
 * host behind the switch (the classic software load balancer) and as
 * an ActiveSwitch handler whose hot index lives in the embedded
 * CPU's 1 KB D$. Halfway through, backend 0 dies — the consistent
 * Maglev table migrates only its flows, every other connection stays
 * stuck to its backend.
 *
 * Build & run:  ./build/examples/lb_demo
 */

#include <cstdio>

#include "fault/FaultPlan.hh"
#include "lb/LbWorkload.hh"

using namespace san;

namespace {

lb::LbRunResult
runOnce(apps::Mode mode)
{
    lb::LbWorkloadParams params;
    params.senders = 4;
    params.backends = 8;
    params.churn.flows = 50'000;
    params.churn.dataRounds = 2;
    params.churn.churnOpens = 2'000;
    params.churn.orphanEvery = 512;

    // Kill backend 0 at 20 simulated ms; the balancer notices on the
    // next packet and lazily migrates its flows.
    fault::FaultPlan plan;
    fault::FaultEvent down;
    down.at = sim::ms(20);
    down.kind = fault::FaultKind::BackendDown;
    down.target = "0";
    plan.addEvent(down);
    fault::globalPlan() = &plan;
    lb::LbRunResult res = lb::runLb(mode, params);
    fault::globalPlan() = nullptr;
    return res;
}

} // namespace

int
main()
{
    const lb::LbRunResult normal = runOnce(apps::Mode::Normal);
    const lb::LbRunResult active = runOnce(apps::Mode::Active);

    std::printf("L4 load balancing, 50k flows + churn, backend 0 "
                "dies at 20 ms\n");
    std::printf("%-14s %10s %9s %9s %11s %12s\n", "where", "lookups",
                "punts", "migrated", "peak-flows", "lb-host-ms");
    const struct {
        const char *label;
        const lb::LbRunResult &res;
    } rows[] = {{"host lb", normal}, {"switch lb", active}};
    for (const auto &row : rows) {
        const apps::LbStats &lb = row.res.stats.lb;
        const unsigned lbHost = 4 + 8;
        const auto &h = row.res.stats.hosts[lbHost];
        std::printf("%-14s %10llu %9llu %9llu %11llu %12.2f\n",
                    row.label,
                    static_cast<unsigned long long>(lb.lookups),
                    static_cast<unsigned long long>(lb.punts),
                    static_cast<unsigned long long>(lb.migrations),
                    static_cast<unsigned long long>(lb.peakFlows),
                    static_cast<double>(h.busy + h.stall) / 1e9);
    }

    const apps::LbStats &n = normal.stats.lb;
    const apps::LbStats &a = active.stats.lb;
    if (n.forwarded != a.forwarded || n.punts != a.punts ||
        n.migrations != a.migrations) {
        std::fprintf(stderr, "mode decision mismatch!\n");
        return 1;
    }
    std::printf("decisions identical across modes; backend-down "
                "events seen: %llu, flows migrated: %llu\n",
                static_cast<unsigned long long>(a.backendDownEvents),
                static_cast<unsigned long long>(a.migrations));
    return 0;
}
