/**
 * @file
 * Hotspot lab: watch the switch queueing policies separate under a
 * hotspot, live.
 *
 * Eight hosts on one 8-port switch run the permutation-with-hotspot
 * pattern (a ring of messages the crossbar could carry at line rate,
 * plus a burst aimed at a receive-only hot node). The run repeats
 * under each policy — bounded central FIFO, VOQ+iSLIP, buffered
 * crossbar, and the unbounded central ideal — printing aggregate
 * goodput, permutation latency, fairness, and how much head-of-line
 * blocking each policy suffered. A metrics-CSV timeline of the VOQ
 * run goes to stderr so the backlog draining is visible interval by
 * interval.
 *
 * Build & run:  ./build/examples/hotspot_lab [policy-spec ...]
 *   policy-spec: kind[:order], e.g. voq:oldest, xpoint:longest, fifo
 */

#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "net/Fabric.hh"
#include "net/Traffic.hh"
#include "obs/Metrics.hh"
#include "sim/Simulation.hh"

using namespace san;

namespace {

void
runPolicy(const std::string &spec, bool timeline)
{
    const auto cfg = net::parsePolicySpec(spec);
    if (!cfg.has_value()) {
        std::fprintf(stderr, "unknown policy spec: %s\n", spec.c_str());
        return;
    }

    sim::Simulation sim;
    net::Fabric fabric(sim);
    net::SwitchParams params;
    params.ports = 8;
    params.policy = *cfg;
    net::Switch &sw = fabric.addSwitch(params);
    std::vector<net::Adapter *> hosts;
    for (unsigned h = 0; h < 8; ++h) {
        net::Adapter &a = fabric.addAdapter("h" + std::to_string(h));
        fabric.connect(sw, h, a);
        hosts.push_back(&a);
    }
    fabric.computeRoutes();

    net::TrafficParams traffic; // defaults: 48 perm + 24 hot x 4 KB
    net::TrafficGen gen(sim, hosts, traffic);

    // Timeline of the policy's buffers, one row per 50 us. Only
    // non-default policies export gauges, and one timeline is enough
    // to see the backlog shape.
    obs::IntervalSampler sampler(std::cerr, sim::us(50));
    const bool sample = timeline && !sw.policy().isPassthrough();
    if (sample) {
        sampler.setRunLabel(spec);
        sw.registerMetrics(sampler.registry());
        sampler.attach(sim.events());
    }

    gen.start();
    const sim::Tick end = sim.run();
    if (sample)
        sampler.finishRun(end);

    const net::TrafficReport r = gen.report();
    std::printf("%-16s agg %5.2f GB/s  ring %5.2f GB/s  "
                "latency %8.1f us (max %8.1f)  jain %.4f  "
                "HOL-blocked %llu\n",
                sw.policy().name(), r.aggregateGBps, r.permGoodputGBps,
                r.permLatencyMeanNs / 1e3, r.permLatencyMaxNs / 1e3,
                r.jainFairness,
                static_cast<unsigned long long>(
                    sw.policy().counters().holBlocked));
}

} // namespace

int
main(int argc, char **argv)
{
    std::vector<std::string> specs;
    for (int i = 1; i < argc; ++i)
        specs.emplace_back(argv[i]);
    if (specs.empty())
        specs = {"fifo", "voq", "xpoint", "central"};

    std::printf("permutation-with-hotspot, 8-port switch, "
                "7 senders x (48 ring + 24 hot) x 4 KB\n");
    for (const std::string &spec : specs)
        runPolicy(spec, spec == "voq");
    std::printf("\nThe bounded FIFO and the crossbar's shallow "
                "crosspoints let the hot backlog block the ring; "
                "VOQs absorb it per input and track the unbounded "
                "ideal.\n");
    return 0;
}
