/**
 * @file
 * Domain example: low-latency cluster reductions.
 *
 * A parallel solver needs a global vector sum every iteration (the
 * classic MPI_Allreduce-shaped bottleneck). This example builds a
 * 64-node cluster as a tree of 16-port switches and compares the
 * software binomial-tree reduction with the in-network switch-tree
 * reduction across vector sizes, printing the latency per iteration.
 *
 * Build & run:  ./build/examples/cluster_allreduce
 */

#include <cstdio>

#include "apps/Reduction.hh"

using namespace san;
using namespace san::apps;

int
main()
{
    std::printf("64-node reduction, software binomial tree vs active "
                "switch tree\n");
    std::printf("%10s %14s %14s %10s %8s\n", "vector(B)", "normal(us)",
                "active(us)", "speedup", "correct");

    for (unsigned vector_bytes : {128u, 256u, 512u}) {
        ReductionParams params;
        params.nodes = 64;
        params.vectorBytes = vector_bytes;
        const ReductionRun normal =
            runReduction(false, ReduceKind::ToOne, params);
        const ReductionRun active =
            runReduction(true, ReduceKind::ToOne, params);
        std::printf("%10u %14.2f %14.2f %10.2f %8s\n", vector_bytes,
                    sim::toMicros(normal.latency),
                    sim::toMicros(active.latency),
                    static_cast<double>(normal.latency) /
                        static_cast<double>(active.latency),
                    normal.correct && active.correct ? "yes" : "NO");
        if (!normal.correct || !active.correct)
            return 1;
    }

    std::printf("\nper-node result segments (Distributed Reduce, "
                "512 B):\n");
    ReductionParams params;
    params.nodes = 64;
    const ReductionRun dist =
        runReduction(true, ReduceKind::Distributed, params);
    std::printf("latency %.2f us, result %s, %s\n",
                sim::toMicros(dist.latency), dist.checksum.c_str(),
                dist.correct ? "verified against sequential reference"
                             : "MISMATCH");
    return dist.correct ? 0 : 1;
}
