/**
 * @file
 * Domain example: active processing must not hurt bystanders.
 *
 * The paper's first design goal is that active switches "should not
 * degrade the performance of non-active messages". This example
 * saturates the switch CPU with a heavy streaming handler for one
 * tenant while a second pair of hosts exchanges ordinary messages
 * through the same switch, and reports the bystanders' message
 * latency with and without the active load.
 *
 * Build & run:  ./build/examples/multi_tenant
 */

#include <cstdio>
#include <vector>

#include "apps/Cluster.hh"

using namespace san;
using namespace san::apps;

namespace {

/** Ping-pong latency between host A and host B, N rounds. */
sim::Task
pingPong(host::Host &a, net::NodeId b, int rounds,
         std::vector<sim::Tick> &rtts)
{
    for (int i = 0; i < rounds; ++i) {
        const sim::Tick t0 = a.cpu().now();
        co_await a.send(b, 512);
        co_await a.recv();
        rtts.push_back(a.cpu().now() - t0);
        co_await sim::Delay{sim::us(50)};
    }
}

sim::Task
echoServer(host::Host &b, int rounds)
{
    for (int i = 0; i < rounds; ++i) {
        net::Message m = co_await b.recv();
        co_await b.send(m.src, 512);
    }
}

double
meanRttUs(bool with_active_load)
{
    ClusterParams params;
    params.hosts = 3; // tenant + two bystanders
    Cluster cluster(params);
    auto &tenant = cluster.host(0);
    auto &alice = cluster.host(1);
    auto &bob = cluster.host(2);
    auto &sw = cluster.sw();

    if (with_active_load) {
        const std::uint64_t stream = 4 * 1024 * 1024;
        sw.registerHandler(1, "hog",
                           [stream](active::HandlerContext &ctx)
                               -> sim::Task {
            std::uint64_t seen = 0;
            while (seen < stream) {
                active::StreamChunk c = co_await ctx.nextChunk();
                co_await ctx.awaitValid(c, 0, c.bytes);
                co_await ctx.compute(c.bytes * 8); // CPU-heavy filter
                seen += c.bytes;
                ctx.deallocateThrough(c.address + c.bytes);
            }
        });
        cluster.sim().spawn([](host::Host &h, net::NodeId st,
                               net::NodeId sw_id,
                               std::uint64_t bytes) -> sim::Task {
            co_await h.postReadTo(st, 0, bytes, sw_id,
                                  net::ActiveHeader{1, 0, 0});
        }(tenant, cluster.storage().id(), sw.id(), stream));
    }

    const int rounds = 50;
    std::vector<sim::Tick> rtts;
    cluster.sim().spawn(pingPong(alice, bob.id(), rounds, rtts));
    cluster.sim().spawn(echoServer(bob, rounds));
    cluster.sim().run();

    sim::Tick total = 0;
    for (sim::Tick t : rtts)
        total += t;
    return sim::toMicros(total) / static_cast<double>(rtts.size());
}

} // namespace

int
main()
{
    const double idle = meanRttUs(false);
    const double loaded = meanRttUs(true);
    std::printf("bystander ping-pong RTT through the switch:\n");
    std::printf("  switch idle          : %7.3f us\n", idle);
    std::printf("  switch CPU saturated : %7.3f us\n", loaded);
    std::printf("  interference         : %+.2f%%\n",
                (loaded / idle - 1.0) * 100.0);
    // The separated control/data paths keep non-active forwarding
    // unaffected; flag anything beyond a small tolerance.
    if (loaded > idle * 1.05) {
        std::fprintf(stderr, "non-active traffic was degraded!\n");
        return 1;
    }
    std::printf("non-active traffic unaffected by active load.\n");
    return 0;
}
