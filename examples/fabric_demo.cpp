/**
 * @file
 * Domain example: building multi-switch fabrics.
 *
 * The paper's experiments run on a single active switch; real system
 * area networks are fabrics. This example builds a k=4 fat-tree
 * (16 hosts, 20 switches) and a small dragonfly (3 groups, 12 hosts)
 * with the net::Topology builders, drives each with the three
 * fabric-wide traffic patterns (uniform random, an adversarial
 * all-groups-crossing permutation, and group-local), and prints what
 * the fabric delivered. Optionally takes a fat-tree arity on the
 * command line: `fabric_demo 8` runs the 128-host k=8 fat-tree.
 *
 * Everything is deterministic: same seed, same numbers, every run.
 *
 * Build & run:  ./build/examples/fabric_demo [k]
 */

#include <cstdio>
#include <cstdlib>

#include "net/Topology.hh"
#include "net/Traffic.hh"
#include "sim/Simulation.hh"

using namespace san;
using namespace san::net;

namespace {

void
runPatterns(const char *what, bool fat_tree, unsigned k,
            const DragonflyParams &df)
{
    struct {
        FabricTrafficParams::Pattern pattern;
        const char *name;
    } const patterns[] = {
        {FabricTrafficParams::Pattern::Uniform, "uniform"},
        {FabricTrafficParams::Pattern::Permutation, "permutation"},
        {FabricTrafficParams::Pattern::GroupLocal, "group-local"},
    };

    bool printed_header = false;
    for (const auto &[pattern, name] : patterns) {
        sim::Simulation sim;
        Fabric fabric(sim);
        const Topology topo =
            fat_tree ? buildFatTree(fabric, FatTreeParams{k})
                     : buildDragonfly(fabric, df);
        if (!printed_header) {
            std::printf("\n%s: %zu hosts, %zu switches, %zu links, "
                        "%u %s\n",
                        what, topo.hosts.size(), topo.switchCount(),
                        fabric.links().size(), topo.groups,
                        fat_tree ? "pods" : "groups");
            std::printf("%-12s %10s %12s %12s %12s %12s\n", "pattern",
                        "delivered", "agg GB/s", "mean lat us",
                        "max lat us", "inter-group");
            printed_header = true;
        }

        FabricTrafficParams p;
        p.pattern = pattern;
        p.messagesPerHost = 4;
        p.messageBytes = 4096;
        FabricTrafficGen gen(sim, topo.hosts, topo.hostGroup, p);
        gen.start();
        sim.run();

        const FabricTrafficReport r = gen.report();
        if (r.deliveredMessages != r.postedMessages) {
            std::printf("LOST MESSAGES: posted %llu delivered %llu\n",
                        static_cast<unsigned long long>(
                            r.postedMessages),
                        static_cast<unsigned long long>(
                            r.deliveredMessages));
            std::exit(1);
        }
        std::printf("%-12s %10llu %12.3f %12.2f %12.2f %11.0f%%\n",
                    name,
                    static_cast<unsigned long long>(
                        r.deliveredMessages),
                    r.aggregateGBps, r.latencyMeanNs / 1e3,
                    r.latencyMaxNs / 1e3,
                    r.deliveredMessages > 0
                        ? 100.0 *
                              static_cast<double>(
                                  r.interGroupMessages) /
                              static_cast<double>(r.deliveredMessages)
                        : 0.0);
    }
}

} // namespace

int
main(int argc, char **argv)
{
    unsigned k = 4;
    if (argc > 1) {
        k = static_cast<unsigned>(std::atoi(argv[1]));
        if (k < 2 || k % 2 != 0) {
            std::fprintf(stderr,
                         "fat-tree arity must be even and >= 2\n");
            return 2;
        }
    }

    std::printf("multi-switch fabrics from src/net/Topology.hh\n");
    char label[32];
    std::snprintf(label, sizeof label, "k=%u fat-tree", k);
    runPatterns(label, true, k, {});
    runPatterns("dragonfly a=2 p=2 h=1", false, 0,
                DragonflyParams{2, 2, 1});
    return 0;
}
