/**
 * @file
 * Quickstart: the smallest complete active-switch program.
 *
 * Builds a one-switch cluster (one host, one storage node), registers
 * a handler that counts bytes streaming through the switch, posts a
 * disk read whose data is directed at the handler, and prints what
 * happened — including how little of the host's time the transfer
 * consumed.
 *
 * Build & run:  ./build/examples/quickstart
 */

#include <cstdio>

#include "apps/Cluster.hh"

using namespace san;

int
main()
{
    // 1. A cluster: hosts and storage around one active switch.
    apps::ClusterParams params;
    apps::Cluster cluster(params);
    auto &host = cluster.host();
    auto &sw = cluster.sw();
    const net::NodeId disk = cluster.storage().id();

    // 2. A handler: runs on the switch's embedded 500 MHz CPU,
    //    consuming the stream from its on-chip data buffers.
    const std::uint64_t file_bytes = 64 * 1024;
    sw.registerHandler(1, "count-bytes",
                       [&](active::HandlerContext &ctx) -> sim::Task {
        std::uint64_t seen = 0;
        while (seen < file_bytes) {
            active::StreamChunk chunk = co_await ctx.nextChunk();
            // Wait for the valid bits: the CPU may run ahead of the
            // wire, but reads of not-yet-arrived lines stall.
            co_await ctx.awaitValid(chunk, 0, chunk.bytes);
            co_await ctx.compute(50); // ~ a loop iteration per chunk
            seen += chunk.bytes;
            // Deallocate_Buffer(end): release consumed buffers.
            ctx.deallocateThrough(chunk.address + chunk.bytes);
        }
        std::printf("[switch ] handler done: %llu bytes at t=%.1f us\n",
                    static_cast<unsigned long long>(seen),
                    sim::toMicros(ctx.sim().now()));
        // Tell the host.
        co_await ctx.send(host.id(), 0, std::nullopt, nullptr,
                          host::tagApp);
    });

    // 3. Host program: post the read (data flows disk -> switch, the
    //    host never touches it), then wait for the handler's ping.
    cluster.sim().spawn([](host::Host &h, net::NodeId storage,
                           net::NodeId sw_id,
                           std::uint64_t bytes) -> sim::Task {
        co_await h.postReadTo(storage, 0, bytes, sw_id,
                              net::ActiveHeader{1, 0, 0});
        net::Message done = co_await h.recv();
        std::printf("[host   ] notified at t=%.1f us (from node %u)\n",
                    sim::toMicros(done.completedAt), done.src);
    }(host, disk, sw.id(), file_bytes));

    // 4. Run the simulation.
    const sim::Tick end = cluster.sim().run();

    std::printf("[summary] simulated time   : %.1f us\n",
                sim::toMicros(end));
    std::printf("[summary] host I/O traffic : %llu bytes (the data "
                "bypassed the host)\n",
                static_cast<unsigned long long>(host.ioTrafficBytes()));
    std::printf("[summary] host utilization : %.4f\n",
                host.cpu().breakdown(end).utilization());
    std::printf("[summary] switch CPU busy  : %.1f us\n",
                sim::toMicros(sw.cpu(0).busyTicks()));
    return 0;
}
